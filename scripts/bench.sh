#!/bin/sh
# Benchmark driver with four modes:
#
#   sh scripts/bench.sh [kernel] [benchtime]  — the simulation-kernel
#     micro-benchmarks in bench/ (gated vs reference kernel, three router
#     kinds, three loads), distilled into BENCH_kernel.json: per-benchmark
#     ns/op, B/op and allocs/op, plus the low-load speedup and saturation
#     allocation reduction per router kind.
#
#   sh scripts/bench.sh shard [benchtime]     — the sharded parallel-kernel
#     scaling benchmarks (RoCo router, 16x16/32x32/64x64 meshes, three
#     loads, 1/2/4/8 shards), distilled into BENCH_shard.json: ns/op and
#     allocs/op per point plus the 2/4/8-shard speedups over one shard.
#
#   sh scripts/bench.sh telemetry [benchtime] — the telemetry-overhead
#     benchmarks (gated kernel, RoCo router, 8x8 mesh, three loads, epoch
#     sampling off vs every 256 cycles), distilled into
#     BENCH_telemetry.json: ns/op and allocs/op per point plus the
#     per-load overhead percentage of enabling telemetry.
#
#   sh scripts/bench.sh layout [benchtime]    — the data-layout benchmarks
#     (gated vs struct-of-arrays kernel, RoCo router, 64x64 and 256x256
#     meshes), distilled into BENCH_layout.json: ns/op and steady-state
#     live-heap bytes/node per point, plus the SoA speedup and per-node
#     footprint reduction.
#
#   sh scripts/bench.sh alloc [benchtime]     — the allocation-stage
#     benchmarks (gated kernel, three router kinds, 8x8 mesh at and beyond
#     saturation, where VA/SA arbitration dominates the step), distilled
#     into BENCH_alloc.json: ns/op, B/op and allocs/op per point.
#
#   sh scripts/bench.sh chiplet [benchtime]   — the chiplet-topology
#     benchmarks (gated kernel, RoCo router, a flat 16x16 mesh vs the
#     same nodes as 2x2 chiplets of 8x8 with parallel and serial boundary
#     links, at low and mid load), distilled into BENCH_chiplet.json:
#     ns/op, B/op and allocs/op per point plus each seam's per-load step
#     cost relative to the flat die.
#
# Every mode defaults to a fixed iteration count (-benchtime=Nx) rather
# than a duration: per-cycle cost drifts with simulated time (queues
# deepen toward saturation), so two kernels — or the telemetry off/on
# pair — must simulate the same horizon for their ratio to mean anything,
# and fixed counts also make BENCH_*.json numbers comparable across
# commits. Pass an explicit benchtime (e.g. 5x larger) for steadier
# numbers. Raw `go test -bench` output lands in bench/out/<mode>.txt
# (ignored by git); the distilled JSON lands at the repository root. Run
# from the repository root (directly or via `make bench`).
set -eu

MODE="kernel"
case "${1:-}" in
kernel | shard | telemetry | layout | alloc | chiplet)
	MODE="$1"
	shift
	;;
esac
case "$MODE" in
kernel) BENCHTIME="${1:-10000x}" ;;
shard) BENCHTIME="${1:-200x}" ;;
telemetry) BENCHTIME="${1:-60000x}" ;;
layout) BENCHTIME="${1:-100x}" ;;
alloc) BENCHTIME="${1:-15000x}" ;;
chiplet) BENCHTIME="${1:-3000x}" ;;
esac
mkdir -p bench/out
RAW="bench/out/$MODE.txt"

if [ "$MODE" = "shard" ]; then
	OUT="BENCH_shard.json"
	CPUS="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo unknown)"

	go test -run '^$' -bench BenchmarkShard -benchmem -benchtime "$BENCHTIME" ./bench/ | tee "$RAW"

	awk -v benchtime="$BENCHTIME" -v cpus="$CPUS" '
	/^BenchmarkShard\// {
	    # BenchmarkShard/mesh/load/sN-P  iters  X ns/op  Y B/op  Z allocs/op
	    name = $1
	    sub(/^BenchmarkShard\//, "", name)
	    sub(/-[0-9]+$/, "", name)
	    split(name, part, "/")
	    mesh = part[1]; load = part[2]; sh = substr(part[3], 2)
	    ns[mesh, load, sh] = $3
	    allocs[mesh, load, sh] = $7
	    if (!(mesh in seenm)) { meshes[++nm] = mesh; seenm[mesh] = 1 }
	}
	END {
	    if (nm == 0) { print "bench.sh: no shard benchmark output parsed" > "/dev/stderr"; exit 1 }
	    nl = split("low mid sat", loads, " ")
	    nsh = split("1 2 4 8", shards, " ")
	    printf "{\n  \"benchtime\": \"%s\",\n  \"cpus\": \"%s\",\n  \"router\": \"roco\",\n  \"meshes\": {", benchtime, cpus
	    for (i = 1; i <= nm; i++) {
	        m = meshes[i]
	        printf "%s\n    \"%s\": {", (i > 1 ? "," : ""), m
	        for (j = 1; j <= nl; j++) {
	            l = loads[j]
	            printf "%s\n      \"%s\": {", (j > 1 ? "," : ""), l
	            for (k = 1; k <= nsh; k++) {
	                s = shards[k]
	                printf "%s\n        \"shards_%s\": {\"ns_op\": %s, \"allocs_op\": %s}", (k > 1 ? "," : ""), s, ns[m,l,s], allocs[m,l,s]
	            }
	            for (k = 2; k <= nsh; k++) {
	                s = shards[k]
	                printf ",\n        \"speedup_%s\": %.2f", s, ns[m,l,"1"] / ns[m,l,s]
	            }
	            printf "\n      }"
	        }
	        printf "\n    }"
	    }
	    printf "\n  }\n}\n"
	}' "$RAW" > "$OUT"

	echo "wrote $OUT"
	exit 0
fi

if [ "$MODE" = "telemetry" ]; then
	OUT="BENCH_telemetry.json"

	go test -run '^$' -bench BenchmarkTelemetry -benchmem -benchtime "$BENCHTIME" ./bench/ | tee "$RAW"

	awk -v benchtime="$BENCHTIME" '
	/^BenchmarkTelemetry\// {
	    # BenchmarkTelemetry/load/mode-N  iters  X ns/op  Y B/op  Z allocs/op
	    name = $1
	    sub(/^BenchmarkTelemetry\//, "", name)
	    sub(/-[0-9]+$/, "", name)
	    split(name, part, "/")
	    load = part[1]; mode = part[2]
	    ns[load, mode] = $3
	    bytes[load, mode] = $5
	    allocs[load, mode] = $7
	    seen = 1
	}
	END {
	    if (!seen) { print "bench.sh: no telemetry benchmark output parsed" > "/dev/stderr"; exit 1 }
	    nl = split("low mid sat", loads, " ")
	    printf "{\n  \"benchtime\": \"%s\",\n  \"router\": \"roco\",\n  \"kernel\": \"gated\",\n  \"epoch_cycles\": 256,\n  \"loads\": {", benchtime
	    for (j = 1; j <= nl; j++) {
	        l = loads[j]
	        printf "%s\n    \"%s\": {", (j > 1 ? "," : ""), l
	        printf "\n      \"off\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s},", ns[l,"off"], bytes[l,"off"], allocs[l,"off"]
	        printf "\n      \"on\":  {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s},", ns[l,"on"], bytes[l,"on"], allocs[l,"on"]
	        printf "\n      \"overhead_pct\": %.2f", (ns[l,"on"] / ns[l,"off"] - 1) * 100
	        printf "\n    }"
	    }
	    printf "\n  }\n}\n"
	}' "$RAW" > "$OUT"

	echo "wrote $OUT"
	exit 0
fi

if [ "$MODE" = "layout" ]; then
	OUT="BENCH_layout.json"

	go test -run '^$' -bench BenchmarkLayout -benchmem -benchtime "$BENCHTIME" ./bench/ | tee "$RAW"

	awk -v benchtime="$BENCHTIME" '
	/^BenchmarkLayout\// {
	    # BenchmarkLayout/mesh/load/kernel-P  iters  <value unit>...
	    # The bytes/node custom metric shifts column positions, so metrics
	    # are parsed as (value, unit) pairs rather than by field index.
	    name = $1
	    sub(/^BenchmarkLayout\//, "", name)
	    sub(/-[0-9]+$/, "", name)
	    split(name, part, "/")
	    mesh = part[1]; load = part[2]; kernel = part[3]
	    for (i = 3; i < NF; i += 2) {
	        if ($(i+1) == "ns/op") ns[mesh, load, kernel] = $i
	        if ($(i+1) == "bytes/node") bpn[mesh, load, kernel] = $i
	    }
	    if (!((mesh, load) in seenp)) { pm[++np] = mesh; pl[np] = load; seenp[mesh, load] = 1 }
	}
	END {
	    if (np == 0) { print "bench.sh: no layout benchmark output parsed" > "/dev/stderr"; exit 1 }
	    printf "{\n  \"benchtime\": \"%s\",\n  \"router\": \"roco\",\n  \"algorithm\": \"xy\",\n  \"points\": {", benchtime
	    prevmesh = ""
	    for (i = 1; i <= np; i++) {
	        m = pm[i]; l = pl[i]
	        if (m != prevmesh) {
	            if (prevmesh != "") printf "\n    },"
	            printf "\n    \"%s\": {", m
	            prevmesh = m
	            first = 1
	        }
	        printf "%s\n      \"%s\": {", (first ? "" : ","), l
	        first = 0
	        printf "\n        \"gated\": {\"ns_op\": %s, \"bytes_node\": %s},", ns[m,l,"gated"], bpn[m,l,"gated"]
	        printf "\n        \"soa\":   {\"ns_op\": %s, \"bytes_node\": %s},", ns[m,l,"soa"], bpn[m,l,"soa"]
	        printf "\n        \"soa_speedup\": %.2f,", ns[m,l,"gated"] / ns[m,l,"soa"]
	        printf "\n        \"bytes_node_reduction_pct\": %.1f", (1 - bpn[m,l,"soa"] / bpn[m,l,"gated"]) * 100
	        printf "\n      }"
	    }
	    printf "\n    }\n  }\n}\n"
	}' "$RAW" > "$OUT"

	echo "wrote $OUT"
	exit 0
fi

if [ "$MODE" = "alloc" ]; then
	OUT="BENCH_alloc.json"

	go test -run '^$' -bench BenchmarkAlloc -benchmem -benchtime "$BENCHTIME" ./bench/ | tee "$RAW"

	awk -v benchtime="$BENCHTIME" '
	/^BenchmarkAlloc\// {
	    # BenchmarkAlloc/kind/load-N  iters  X ns/op  Y B/op  Z allocs/op
	    name = $1
	    sub(/^BenchmarkAlloc\//, "", name)
	    sub(/-[0-9]+$/, "", name)
	    split(name, part, "/")
	    kind = part[1]; load = part[2]
	    ns[kind, load] = $3
	    bytes[kind, load] = $5
	    allocs[kind, load] = $7
	    if (!(kind in seen)) { kinds[++nk] = kind; seen[kind] = 1 }
	}
	END {
	    if (nk == 0) { print "bench.sh: no alloc benchmark output parsed" > "/dev/stderr"; exit 1 }
	    nl = split("sat deep", loads, " ")
	    printf "{\n  \"benchtime\": \"%s\",\n  \"kernel\": \"gated\",\n  \"kinds\": {", benchtime
	    for (i = 1; i <= nk; i++) {
	        k = kinds[i]
	        printf "%s\n    \"%s\": {", (i > 1 ? "," : ""), k
	        for (j = 1; j <= nl; j++) {
	            l = loads[j]
	            printf "%s\n      \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", (j > 1 ? "," : ""), l, ns[k,l], bytes[k,l], allocs[k,l]
	        }
	        printf "\n    }"
	    }
	    printf "\n  }\n}\n"
	}' "$RAW" > "$OUT"

	echo "wrote $OUT"
	exit 0
fi

if [ "$MODE" = "chiplet" ]; then
	OUT="BENCH_chiplet.json"

	go test -run '^$' -bench BenchmarkChiplet -benchmem -benchtime "$BENCHTIME" ./bench/ | tee "$RAW"

	awk -v benchtime="$BENCHTIME" '
	/^BenchmarkChiplet\// {
	    # BenchmarkChiplet/seam/load-N  iters  X ns/op  Y B/op  Z allocs/op
	    name = $1
	    sub(/^BenchmarkChiplet\//, "", name)
	    sub(/-[0-9]+$/, "", name)
	    split(name, part, "/")
	    seam = part[1]; load = part[2]
	    ns[seam, load] = $3
	    bytes[seam, load] = $5
	    allocs[seam, load] = $7
	    seen = 1
	}
	END {
	    if (!seen) { print "bench.sh: no chiplet benchmark output parsed" > "/dev/stderr"; exit 1 }
	    ns_ = split("flat parallel serial", seams, " ")
	    nl = split("low mid", loads, " ")
	    printf "{\n  \"benchtime\": \"%s\",\n  \"router\": \"roco\",\n  \"kernel\": \"gated\",\n  \"nodes\": 256,\n  \"seams\": {", benchtime
	    for (i = 1; i <= ns_; i++) {
	        s = seams[i]
	        printf "%s\n    \"%s\": {", (i > 1 ? "," : ""), s
	        for (j = 1; j <= nl; j++) {
	            l = loads[j]
	            printf "%s\n      \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", (j > 1 ? "," : ""), l, ns[s,l], bytes[s,l], allocs[s,l]
	        }
	        if (s != "flat") {
	            for (j = 1; j <= nl; j++) {
	                l = loads[j]
	                printf ",\n      \"vs_flat_%s_pct\": %.1f", l, (ns[s,l] / ns["flat",l] - 1) * 100
	            }
	        }
	        printf "\n    }"
	    }
	    printf "\n  }\n}\n"
	}' "$RAW" > "$OUT"

	echo "wrote $OUT"
	exit 0
fi

OUT="BENCH_kernel.json"

go test -run '^$' -bench BenchmarkKernel -benchmem -benchtime "$BENCHTIME" ./bench/ | tee "$RAW"

awk -v benchtime="$BENCHTIME" '
/^BenchmarkKernel\// {
    # BenchmarkKernel/kind/load/kernel-N  iters  X ns/op  Y B/op  Z allocs/op
    name = $1
    sub(/^BenchmarkKernel\//, "", name)
    sub(/-[0-9]+$/, "", name)
    split(name, part, "/")
    kind = part[1]; load = part[2]; kernel = part[3]
    ns[kind, load, kernel] = $3
    bytes[kind, load, kernel] = $5
    allocs[kind, load, kernel] = $7
    if (!(kind in seen)) { kinds[++nk] = kind; seen[kind] = 1 }
}
END {
    if (nk == 0) { print "bench.sh: no benchmark output parsed" > "/dev/stderr"; exit 1 }
    nl = split("low mid sat", loads, " ")
    printf "{\n  \"benchtime\": \"%s\",\n  \"kinds\": {", benchtime
    for (i = 1; i <= nk; i++) {
        k = kinds[i]
        printf "%s\n    \"%s\": {", (i > 1 ? "," : ""), k
        for (j = 1; j <= nl; j++) {
            l = loads[j]
            printf "%s\n      \"%s\": {", (j > 1 ? "," : ""), l
            printf "\n        \"gated\":     {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s},", ns[k,l,"gated"], bytes[k,l,"gated"], allocs[k,l,"gated"]
            printf "\n        \"reference\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", ns[k,l,"reference"], bytes[k,l,"reference"], allocs[k,l,"reference"]
            printf "\n      }"
        }
        low_speedup = ns[k,"low","reference"] / ns[k,"low","gated"]
        if (allocs[k,"sat","reference"] > 0)
            alloc_cut = 1 - allocs[k,"sat","gated"] / allocs[k,"sat","reference"]
        else
            alloc_cut = 0
        printf ",\n      \"low_load_speedup\": %.2f,\n      \"sat_allocs_reduction\": %.2f\n    }", low_speedup, alloc_cut
    }
    printf "\n  }\n}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"
