#!/bin/sh
# Benchmark driver with two modes:
#
#   sh scripts/bench.sh [kernel] [benchtime]  — the simulation-kernel
#     micro-benchmarks in bench/ (gated vs reference kernel, three router
#     kinds, three loads), distilled into BENCH_kernel.json: per-benchmark
#     ns/op, B/op and allocs/op, plus the low-load speedup and saturation
#     allocation reduction per router kind.
#
#   sh scripts/bench.sh shard [benchtime]     — the sharded parallel-kernel
#     scaling benchmarks (RoCo router, 16x16/32x32/64x64 meshes, three
#     loads, 1/2/4/8 shards), distilled into BENCH_shard.json: ns/op and
#     allocs/op per point plus the 2/4/8-shard speedups over one shard.
#
#   sh scripts/bench.sh telemetry [benchtime] — the telemetry-overhead
#     benchmarks (gated kernel, RoCo router, 8x8 mesh, three loads, epoch
#     sampling off vs every 256 cycles), distilled into
#     BENCH_telemetry.json: ns/op and allocs/op per point plus the
#     per-load overhead percentage of enabling telemetry. This mode
#     defaults to a fixed iteration count (60000x) instead of a duration:
#     per-cycle cost drifts with simulated time (queues deepen toward
#     saturation), so the off/on runs must simulate the same horizon for
#     the overhead division to be meaningful.
#
# A bare first argument that is not a mode name is taken as the benchtime
# for the kernel mode (back-compat). Default benchtime 2s; pass e.g. 5s
# for steadier numbers. Run from the repository root (directly or via
# `make bench`, which runs the kernel and shard modes).
set -eu

MODE="kernel"
case "${1:-}" in
kernel | shard | telemetry)
	MODE="$1"
	shift
	;;
esac
if [ "$MODE" = "telemetry" ]; then
	BENCHTIME="${1:-60000x}"
else
	BENCHTIME="${1:-2s}"
fi
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

if [ "$MODE" = "shard" ]; then
	OUT="BENCH_shard.json"
	CPUS="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo unknown)"

	go test -run '^$' -bench BenchmarkShard -benchmem -benchtime "$BENCHTIME" ./bench/ | tee "$RAW"

	awk -v benchtime="$BENCHTIME" -v cpus="$CPUS" '
	/^BenchmarkShard\// {
	    # BenchmarkShard/mesh/load/sN-P  iters  X ns/op  Y B/op  Z allocs/op
	    name = $1
	    sub(/^BenchmarkShard\//, "", name)
	    sub(/-[0-9]+$/, "", name)
	    split(name, part, "/")
	    mesh = part[1]; load = part[2]; sh = substr(part[3], 2)
	    ns[mesh, load, sh] = $3
	    allocs[mesh, load, sh] = $7
	    if (!(mesh in seenm)) { meshes[++nm] = mesh; seenm[mesh] = 1 }
	}
	END {
	    if (nm == 0) { print "bench.sh: no shard benchmark output parsed" > "/dev/stderr"; exit 1 }
	    nl = split("low mid sat", loads, " ")
	    nsh = split("1 2 4 8", shards, " ")
	    printf "{\n  \"benchtime\": \"%s\",\n  \"cpus\": \"%s\",\n  \"router\": \"roco\",\n  \"meshes\": {", benchtime, cpus
	    for (i = 1; i <= nm; i++) {
	        m = meshes[i]
	        printf "%s\n    \"%s\": {", (i > 1 ? "," : ""), m
	        for (j = 1; j <= nl; j++) {
	            l = loads[j]
	            printf "%s\n      \"%s\": {", (j > 1 ? "," : ""), l
	            for (k = 1; k <= nsh; k++) {
	                s = shards[k]
	                printf "%s\n        \"shards_%s\": {\"ns_op\": %s, \"allocs_op\": %s}", (k > 1 ? "," : ""), s, ns[m,l,s], allocs[m,l,s]
	            }
	            for (k = 2; k <= nsh; k++) {
	                s = shards[k]
	                printf ",\n        \"speedup_%s\": %.2f", s, ns[m,l,"1"] / ns[m,l,s]
	            }
	            printf "\n      }"
	        }
	        printf "\n    }"
	    }
	    printf "\n  }\n}\n"
	}' "$RAW" > "$OUT"

	echo "wrote $OUT"
	exit 0
fi

if [ "$MODE" = "telemetry" ]; then
	OUT="BENCH_telemetry.json"

	go test -run '^$' -bench BenchmarkTelemetry -benchmem -benchtime "$BENCHTIME" ./bench/ | tee "$RAW"

	awk -v benchtime="$BENCHTIME" '
	/^BenchmarkTelemetry\// {
	    # BenchmarkTelemetry/load/mode-N  iters  X ns/op  Y B/op  Z allocs/op
	    name = $1
	    sub(/^BenchmarkTelemetry\//, "", name)
	    sub(/-[0-9]+$/, "", name)
	    split(name, part, "/")
	    load = part[1]; mode = part[2]
	    ns[load, mode] = $3
	    bytes[load, mode] = $5
	    allocs[load, mode] = $7
	    seen = 1
	}
	END {
	    if (!seen) { print "bench.sh: no telemetry benchmark output parsed" > "/dev/stderr"; exit 1 }
	    nl = split("low mid sat", loads, " ")
	    printf "{\n  \"benchtime\": \"%s\",\n  \"router\": \"roco\",\n  \"kernel\": \"gated\",\n  \"epoch_cycles\": 256,\n  \"loads\": {", benchtime
	    for (j = 1; j <= nl; j++) {
	        l = loads[j]
	        printf "%s\n    \"%s\": {", (j > 1 ? "," : ""), l
	        printf "\n      \"off\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s},", ns[l,"off"], bytes[l,"off"], allocs[l,"off"]
	        printf "\n      \"on\":  {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s},", ns[l,"on"], bytes[l,"on"], allocs[l,"on"]
	        printf "\n      \"overhead_pct\": %.2f", (ns[l,"on"] / ns[l,"off"] - 1) * 100
	        printf "\n    }"
	    }
	    printf "\n  }\n}\n"
	}' "$RAW" > "$OUT"

	echo "wrote $OUT"
	exit 0
fi

OUT="BENCH_kernel.json"

go test -run '^$' -bench BenchmarkKernel -benchmem -benchtime "$BENCHTIME" ./bench/ | tee "$RAW"

awk -v benchtime="$BENCHTIME" '
/^BenchmarkKernel\// {
    # BenchmarkKernel/kind/load/kernel-N  iters  X ns/op  Y B/op  Z allocs/op
    name = $1
    sub(/^BenchmarkKernel\//, "", name)
    sub(/-[0-9]+$/, "", name)
    split(name, part, "/")
    kind = part[1]; load = part[2]; kernel = part[3]
    ns[kind, load, kernel] = $3
    bytes[kind, load, kernel] = $5
    allocs[kind, load, kernel] = $7
    if (!(kind in seen)) { kinds[++nk] = kind; seen[kind] = 1 }
}
END {
    if (nk == 0) { print "bench.sh: no benchmark output parsed" > "/dev/stderr"; exit 1 }
    nl = split("low mid sat", loads, " ")
    printf "{\n  \"benchtime\": \"%s\",\n  \"kinds\": {", benchtime
    for (i = 1; i <= nk; i++) {
        k = kinds[i]
        printf "%s\n    \"%s\": {", (i > 1 ? "," : ""), k
        for (j = 1; j <= nl; j++) {
            l = loads[j]
            printf "%s\n      \"%s\": {", (j > 1 ? "," : ""), l
            printf "\n        \"gated\":     {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s},", ns[k,l,"gated"], bytes[k,l,"gated"], allocs[k,l,"gated"]
            printf "\n        \"reference\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", ns[k,l,"reference"], bytes[k,l,"reference"], allocs[k,l,"reference"]
            printf "\n      }"
        }
        low_speedup = ns[k,"low","reference"] / ns[k,"low","gated"]
        if (allocs[k,"sat","reference"] > 0)
            alloc_cut = 1 - allocs[k,"sat","gated"] / allocs[k,"sat","reference"]
        else
            alloc_cut = 0
        printf ",\n      \"low_load_speedup\": %.2f,\n      \"sat_allocs_reduction\": %.2f\n    }", low_speedup, alloc_cut
    }
    printf "\n  }\n}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"
