#!/bin/sh
# Kernel benchmark driver: runs the simulation-kernel micro-benchmarks in
# bench/ (gated vs reference kernel, three router kinds, three loads) and
# distils the results into BENCH_kernel.json — per-benchmark ns/op, B/op
# and allocs/op, plus the low-load speedup and saturation allocation
# reduction per router kind that the perf trajectory tracks.
#
# Usage: sh scripts/bench.sh [benchtime]   (default 2s; pass e.g. 5s for
# steadier numbers). Run from the repository root (directly or via
# `make bench`).
set -eu

BENCHTIME="${1:-2s}"
OUT="BENCH_kernel.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench BenchmarkKernel -benchmem -benchtime "$BENCHTIME" ./bench/ | tee "$RAW"

awk -v benchtime="$BENCHTIME" '
/^BenchmarkKernel\// {
    # BenchmarkKernel/kind/load/kernel-N  iters  X ns/op  Y B/op  Z allocs/op
    name = $1
    sub(/^BenchmarkKernel\//, "", name)
    sub(/-[0-9]+$/, "", name)
    split(name, part, "/")
    kind = part[1]; load = part[2]; kernel = part[3]
    ns[kind, load, kernel] = $3
    bytes[kind, load, kernel] = $5
    allocs[kind, load, kernel] = $7
    if (!(kind in seen)) { kinds[++nk] = kind; seen[kind] = 1 }
}
END {
    if (nk == 0) { print "bench.sh: no benchmark output parsed" > "/dev/stderr"; exit 1 }
    nl = split("low mid sat", loads, " ")
    printf "{\n  \"benchtime\": \"%s\",\n  \"kinds\": {", benchtime
    for (i = 1; i <= nk; i++) {
        k = kinds[i]
        printf "%s\n    \"%s\": {", (i > 1 ? "," : ""), k
        for (j = 1; j <= nl; j++) {
            l = loads[j]
            printf "%s\n      \"%s\": {", (j > 1 ? "," : ""), l
            printf "\n        \"gated\":     {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s},", ns[k,l,"gated"], bytes[k,l,"gated"], allocs[k,l,"gated"]
            printf "\n        \"reference\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", ns[k,l,"reference"], bytes[k,l,"reference"], allocs[k,l,"reference"]
            printf "\n      }"
        }
        low_speedup = ns[k,"low","reference"] / ns[k,"low","gated"]
        if (allocs[k,"sat","reference"] > 0)
            alloc_cut = 1 - allocs[k,"sat","gated"] / allocs[k,"sat","reference"]
        else
            alloc_cut = 0
        printf ",\n      \"low_load_speedup\": %.2f,\n      \"sat_allocs_reduction\": %.2f\n    }", low_speedup, alloc_cut
    }
    printf "\n  }\n}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"
