// Command doccheck is the documentation gate run by scripts/doccheck.sh:
// it walks the module with the standard library's go/parser and fails
// when (1) any package is missing a godoc package comment, (2) any
// exported identifier in a public (non-internal, non-main) package is
// missing a doc comment — a group doc on a const/var/type block covers
// its members — or (3) any relative link in a markdown file points at a
// path that does not exist. No output and exit 0 means the docs are
// whole.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string
	problems = append(problems, checkGoDocs(root)...)
	problems = append(problems, checkMarkdownLinks(root)...)
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "doccheck: "+p)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d problems\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("doccheck: ok")
}

// skipDir names directories that hold no checked sources.
func skipDir(name string) bool {
	return name == ".git" || name == "testdata" || strings.HasPrefix(name, ".")
}

// checkGoDocs parses every package directory and applies the package- and
// exported-identifier-comment rules.
func checkGoDocs(root string) []string {
	dirs := map[string]bool{}
	_ = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			if skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})

	var problems []string
	for dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", dir, err))
			continue
		}
		for name, pkg := range pkgs {
			problems = append(problems, checkPackage(fset, dir, name, pkg)...)
		}
	}
	return problems
}

// publicPackage reports whether dir's exported identifiers are part of
// the module's API surface: not under internal/ or scripts/, and not a
// command (package main has no importable identifiers).
func publicPackage(dir, pkgName string) bool {
	if pkgName == "main" {
		return false
	}
	clean := filepath.ToSlash(dir)
	return !strings.Contains(clean+"/", "/internal/") &&
		!strings.HasPrefix(clean, "internal/") &&
		!strings.HasPrefix(clean, "scripts/")
}

func checkPackage(fset *token.FileSet, dir, name string, pkg *ast.Package) []string {
	var problems []string

	hasPkgDoc := false
	for _, f := range pkg.Files {
		if f.Doc != nil {
			hasPkgDoc = true
			break
		}
	}
	if !hasPkgDoc {
		problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, name))
	}

	if !publicPackage(dir, name) {
		return problems
	}

	// Exported types, to scope the method rule below to reachable methods.
	exportedTypes := map[string]bool{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.IsExported() {
					exportedTypes[ts.Name.Name] = true
				}
			}
		}
	}

	report := func(pos token.Pos, kind, ident string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, ident))
	}

	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || d.Doc != nil {
					continue
				}
				if d.Recv != nil && !exportedTypes[receiverType(d)] {
					continue
				}
				report(d.Pos(), "function", d.Name.Name)
			case *ast.GenDecl:
				if d.Doc != nil {
					continue // a block doc covers every member
				}
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && s.Doc == nil {
							report(s.Pos(), "type", s.Name.Name)
						}
					case *ast.ValueSpec:
						if s.Doc != nil || s.Comment != nil {
							continue
						}
						for _, n := range s.Names {
							if n.IsExported() {
								report(s.Pos(), "value", n.Name)
							}
						}
					}
				}
			}
		}
	}
	return problems
}

// receiverType extracts the bare type name of a method receiver.
func receiverType(d *ast.FuncDecl) string {
	if len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// mdLink matches markdown link and image targets: [text](target).
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// checkMarkdownLinks verifies that every relative link in every *.md file
// resolves to an existing file or directory.
func checkMarkdownLinks(root string) []string {
	var problems []string
	_ = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			if skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", path, err))
			return nil
		}
		for lineNo, line := range strings.Split(string(data), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "#") ||
					strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "/") {
					continue
				}
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(path), target)
				if _, err := os.Stat(resolved); err != nil {
					problems = append(problems, fmt.Sprintf("%s:%d: dead relative link %q", path, lineNo+1, m[1]))
				}
			}
		}
		return nil
	})
	return problems
}
