// Command rocoserve runs the crash-surviving simulation campaign
// service: an HTTP/JSON server that accepts roco simulation jobs,
// executes them on a bounded worker pool with per-job deadlines, cycle
// budgets and exponential-backoff retries, checkpoints every job on a
// cadence, and — after any crash or restart — resumes every in-flight
// job from its latest valid snapshot, bit-identically.
//
// Usage:
//
//	rocoserve -data DIR [-addr :8080] [-workers N] [-queue N]
//	          [-checkpoint-every N] [-retry-base D] [-retry-max D]
//	          [-drain D] [-v]
//
// See docs/OPERATIONS.md for the API and the job lifecycle.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"github.com/rocosim/roco/internal/campaign"
	"github.com/rocosim/roco/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		data      = flag.String("data", "", "data directory for job state (required)")
		workers   = flag.Int("workers", 2, "concurrent simulation workers")
		queueCap  = flag.Int("queue", 64, "max open (non-terminal) jobs before admission sheds load")
		ckptEvery = flag.Int64("checkpoint-every", 2048, "default snapshot cadence in cycles")
		retryBase = flag.Duration("retry-base", 250*time.Millisecond, "first retry backoff delay")
		retryMax  = flag.Duration("retry-max", 30*time.Second, "retry backoff cap")
		drain     = flag.Duration("drain", serve.DefaultDrain, "in-flight request drain timeout on shutdown")
		verbose   = flag.Bool("v", false, "log job lifecycle events")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "rocoserve: -data is required")
		flag.Usage()
		os.Exit(2)
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = log.Printf
	}
	mgr, err := campaign.Open(campaign.Options{
		Dir:             *data,
		Workers:         *workers,
		QueueCap:        *queueCap,
		CheckpointEvery: *ckptEvery,
		RetryBase:       *retryBase,
		RetryMax:        *retryMax,
		Logf:            logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rocoserve: %v\n", err)
		os.Exit(2)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rocoserve: %v\n", err)
		os.Exit(2)
	}
	log.Printf("rocoserve: listening on http://%s (data %s, %d workers, queue cap %d)",
		ln.Addr(), *data, *workers, *queueCap)
	srv := serve.Start(ln, campaign.Handler(mgr), serve.Options{
		Drain: *drain,
		// Stop the campaign first: running jobs flush a final snapshot and
		// park resumable, and SSE streams end so the drain is not held open.
		BeforeDrain: mgr.Stop,
		Logf:        log.Printf,
	})
	if err := srv.Wait(); err != nil {
		fmt.Fprintf(os.Stderr, "rocoserve: %v\n", err)
		os.Exit(2)
	}
	log.Printf("rocoserve: shut down cleanly")
}
