// Command rocobench regenerates the tables and figures of the paper's
// evaluation section (Kim et al., ISCA 2006) and prints them as ASCII
// tables and plots.
//
// Run everything:
//
//	rocobench -exp all
//
// Or a single experiment:
//
//	rocobench -exp fig8
//	rocobench -exp table2
//	rocobench -exp fig11 -trials 5 -measure 50000
//
// The defaults use a scaled-down run length (2k warm-up + 30k measured
// packets per point, versus the paper's 20k + 1M) so the full suite
// finishes in minutes; raise -warmup/-measure for paper-scale statistics.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/rocosim/roco"
)

var experiments = []string{
	"table1", "table2", "table3",
	"fig2", "fig3", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
}

// extensions are studies beyond the paper's figures; they run only when
// requested by name.
var extensions = []string{"scaling", "pktsize", "saturation", "mpeg", "degradation"}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run: "+strings.Join(append(append([]string{}, experiments...), extensions...), ", ")+", or all (paper figures only)")
		warmup   = flag.Int64("warmup", 2000, "warm-up packets per run")
		measure  = flag.Int64("measure", 30000, "measured packets per run")
		trials   = flag.Int("trials", 3, "random fault placements per point (figs 11/12/14)")
		seed     = flag.Uint64("seed", 1, "random seed")
		width    = flag.Int("width", 8, "mesh width")
		height   = flag.Int("height", 8, "mesh height")
		serial   = flag.Bool("serial", false, "disable parallel simulation (deprecated: use -workers 1)")
		workers  = flag.Int("workers", 0, "total simulation concurrency, shared between parallel configurations and per-run shards (0 = GOMAXPROCS, or serial with -serial)")
		shards   = flag.Int("shards", 1, "split every simulation across this many mesh shards (bit-identical results for any value)")
		mcSample = flag.Int("mc", 1_000_000, "Monte-Carlo samples for table 2")
		jsonOut  = flag.String("json", "", "also write machine-readable results to this file")
		kernel   = flag.String("kernel", "gated", "simulation kernel: gated (activity-gated, default), soa (struct-of-arrays) or reference (tick everything)")
		reliable = flag.Bool("reliable", false, "arm end-to-end reliable delivery in the fault-injecting experiments (degradation)")
		chips    = flag.String("chips", "", "run on a multichip mesh: chiplet grid as CXxCY (needs -chip-size; the degradation experiment then strikes a whole die-to-die interface)")
		chipSize = flag.String("chip-size", "", "nodes per chiplet as WxH (needs -chips)")
		d2dClass = flag.String("d2d-class", "parallel", "die-to-die boundary link class: parallel, serial")
		d2dLat   = flag.Int("d2d-latency", 0, "die-to-die link latency in cycles (0 = class default)")
		d2dGap   = flag.Int("d2d-gap", 0, "cycles between flits entering a die-to-die link (0 = class default)")
	)
	flag.Parse()

	reference, soa := false, false
	switch strings.ToLower(*kernel) {
	case "gated":
	case "soa":
		soa = true
	case "reference":
		reference = true
	default:
		fmt.Fprintf(os.Stderr, "unknown kernel %q (want gated, soa, reference)\n", *kernel)
		os.Exit(1)
	}

	// Resolve -serial into the Workers budget up front instead of going
	// through the deprecated Options.Parallel flag.
	budget := *workers
	if budget == 0 {
		if *serial {
			budget = 1
		} else {
			budget = runtime.GOMAXPROCS(0)
		}
	}
	opts := roco.Options{
		Width: *width, Height: *height,
		Warmup: *warmup, Measure: *measure,
		FaultTrials:     *trials,
		Seed:            *seed,
		Workers:         budget,
		Shards:          *shards,
		ReferenceKernel: reference,
		SoAKernel:       soa,
		Reliable:        *reliable,
	}
	if (*chips == "") != (*chipSize == "") {
		fmt.Fprintln(os.Stderr, "rocobench: -chips and -chip-size must be set together")
		os.Exit(1)
	}
	if *chips != "" {
		var err error
		if opts.ChipsX, opts.ChipsY, err = parseGrid(*chips); err != nil {
			fmt.Fprintf(os.Stderr, "rocobench: -chips: %v\n", err)
			os.Exit(1)
		}
		if opts.ChipW, opts.ChipH, err = parseGrid(*chipSize); err != nil {
			fmt.Fprintf(os.Stderr, "rocobench: -chip-size: %v\n", err)
			os.Exit(1)
		}
		if err := opts.D2DClass.UnmarshalText([]byte(*d2dClass)); err != nil {
			fmt.Fprintf(os.Stderr, "rocobench: -d2d-class: %v\n", err)
			os.Exit(1)
		}
		opts.D2DLatency, opts.D2DGap = *d2dLat, *d2dGap
	}

	names := []string{*exp}
	if *exp == "all" {
		names = experiments
	}
	jsonResults := map[string]any{}
	for _, name := range names {
		start := time.Now()
		switch name {
		case "table1":
			roco.Table1(os.Stdout)
		case "table2":
			res := roco.Table2(*mcSample, *seed)
			res.Render(os.Stdout)
			jsonResults[name] = res
		case "table3":
			roco.Table3(os.Stdout)
		case "fig2":
			roco.Figure2(os.Stdout, 3)
		case "fig3":
			fmt.Println("Figure 3 — contention probabilities, uniform traffic")
			panels := roco.Figure3(opts)
			for _, panel := range panels {
				panel.Render(os.Stdout)
			}
			jsonResults[name] = panels
		case "fig8":
			fmt.Println("Figure 8 — uniform random traffic")
			sweeps := roco.Figure8(opts)
			for _, sweep := range sweeps {
				sweep.Render(os.Stdout)
			}
			jsonResults[name] = sweeps
		case "fig9":
			fmt.Println("Figure 9 — self-similar traffic")
			sweeps := roco.Figure9(opts)
			for _, sweep := range sweeps {
				sweep.Render(os.Stdout)
			}
			jsonResults[name] = sweeps
		case "fig10":
			fmt.Println("Figure 10 — transpose traffic")
			sweeps := roco.Figure10(opts)
			for _, sweep := range sweeps {
				sweep.Render(os.Stdout)
			}
			jsonResults[name] = sweeps
		case "fig11":
			fmt.Println("Figure 11 — completion probability, router-centric (critical) faults")
			panels := roco.Figure11(opts)
			for _, panel := range panels {
				panel.Render(os.Stdout)
			}
			jsonResults[name] = panels
		case "fig12":
			fmt.Println("Figure 12 — completion probability, message-centric (non-critical) faults")
			panels := roco.Figure12(opts)
			for _, panel := range panels {
				panel.Render(os.Stdout)
			}
			jsonResults[name] = panels
		case "fig13":
			fmt.Println("Figure 13 — energy per packet")
			res := roco.Figure13(opts)
			res.Render(os.Stdout)
			jsonResults[name] = res
		case "fig14":
			fmt.Println("Figure 14 — Performance-Energy-Fault-tolerance (PEF)")
			panels := roco.Figure14(opts)
			for _, panel := range panels {
				panel.Render(os.Stdout)
			}
			jsonResults[name] = panels
		case "scaling":
			fmt.Println("Extension — mesh-size scaling")
			roco.RunScalingStudy(opts, roco.XY, 0.20, []int{4, 6, 8, 10, 12}).Render(os.Stdout)
		case "pktsize":
			fmt.Println("Extension — packet-length scaling")
			roco.RunPacketSizeStudy(opts, roco.XY, 0.20, []int{1, 2, 4, 8, 16}).Render(os.Stdout)
		case "mpeg":
			fmt.Println("Extension — MPEG-2 video traffic (the paper ran this workload but omitted the plots for space)")
			for _, sweep := range roco.FigureMPEG(opts) {
				sweep.Render(os.Stdout)
			}
		case "degradation":
			fmt.Println("Extension — graceful degradation under a runtime fault")
			exp := roco.RunDegradationExperiment(opts, roco.XY)
			exp.Render(os.Stdout)
			jsonResults[name] = exp
		case "saturation":
			fmt.Println("Extension — saturation throughput")
			for _, alg := range roco.Algorithms {
				roco.RunSaturationStudy(opts, alg).Render(os.Stdout)
			}
		default:
			fmt.Fprintf(os.Stderr, "rocobench: unknown experiment %q (want %s)\n", name, strings.Join(experiments, ", "))
			os.Exit(2)
		}
		fmt.Printf("[%s done in %.1fs]\n\n", name, time.Since(start).Seconds())
	}

	if *jsonOut != "" {
		writeResults(*jsonOut, jsonResults)
	}
}

// parseGrid parses a "WxH" dimension pair.
func parseGrid(s string) (int, int, error) {
	a, b, ok := strings.Cut(strings.ToLower(strings.TrimSpace(s)), "x")
	if !ok {
		return 0, 0, fmt.Errorf("bad grid %q (want WxH, e.g. 2x2)", s)
	}
	var w, h int
	if _, err := fmt.Sscanf(strings.TrimSpace(a), "%d", &w); err != nil {
		return 0, 0, fmt.Errorf("bad grid %q (want positive WxH)", s)
	}
	if _, err := fmt.Sscanf(strings.TrimSpace(b), "%d", &h); err != nil {
		return 0, 0, fmt.Errorf("bad grid %q (want positive WxH)", s)
	}
	if w < 1 || h < 1 {
		return 0, 0, fmt.Errorf("bad grid %q (want positive WxH)", s)
	}
	return w, h, nil
}

func writeResults(path string, jsonResults map[string]any) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rocobench: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := roco.WriteJSON(f, jsonResults); err != nil {
		fmt.Fprintf(os.Stderr, "rocobench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}
