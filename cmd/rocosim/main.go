// Command rocosim runs a single on-chip-network simulation and prints its
// measurements. It exposes every knob of the public API: router
// architecture, routing algorithm, traffic pattern, injection rate, mesh
// size, run length, fault injection, and epoch telemetry.
//
// Examples:
//
//	rocosim -router roco -routing xy -traffic uniform -rate 0.25
//	rocosim -router generic -routing adaptive -traffic transpose -rate 0.3
//	rocosim -router roco -faults 2 -faultclass critical -rate 0.3 -seed 7
//	rocosim -router roco -faults-at 3000,7000 -audit 64 -v
//	rocosim -router roco -fault-rate 20000 -fault-horizon 60000 -v
//	rocosim -topology multichipmesh -chips 2x2 -chip-size 4x4 -d2d-class serial -v
//	rocosim -topology multichipmesh -chips 2x2 -chip-size 4x4 -d2d-fault 3:east@5000 -reliable -v
//	rocosim -router roco -telemetry-every 256 -json
//	rocosim -router roco -rate 0.30 -serve 127.0.0.1:9090
package main

import (
	_ "expvar" // registers /debug/vars on the -serve endpoint
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -serve endpoint
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"

	"github.com/rocosim/roco"
	"github.com/rocosim/roco/internal/serve"
)

// Exit codes: 0 success, 2 usage or runtime error, 3 livelock watchdog
// fired (the run terminated through the inactivity rule with traffic
// wedged), 128+signum when a signal stopped a checkpointed run after the
// final snapshot was flushed.
const exitWatchdog = 3

func main() {
	var (
		routerName  = flag.String("router", "roco", "router architecture: generic, pathsensitive, roco, pdr (xy only)")
		routingName = flag.String("routing", "xy", "routing algorithm: xy, xyyx, adaptive")
		trafficName = flag.String("traffic", "uniform", "traffic pattern: uniform, transpose, selfsimilar, mpeg2, bitcomplement, hotspot")
		rate        = flag.Float64("rate", 0.25, "injection rate in flits/node/cycle")
		topoName    = flag.String("topology", "mesh", "topology: mesh, torus, multichipmesh, multichiptorus (multichip* need -chips and -chip-size)")
		width       = flag.Int("width", 8, "mesh width (single-die topologies; multichip derives it from -chips x -chip-size)")
		height      = flag.Int("height", 8, "mesh height (single-die topologies)")
		chips       = flag.String("chips", "", "chiplet grid as CXxCY, e.g. 2x2 (multichip topologies)")
		chipSize    = flag.String("chip-size", "", "nodes per chiplet as WxH, e.g. 4x4 (multichip topologies)")
		d2dClass    = flag.String("d2d-class", "parallel", "die-to-die boundary link class: parallel, serial")
		d2dLatency  = flag.Int("d2d-latency", 0, "die-to-die link latency in cycles (0 = class default)")
		d2dGap      = flag.Int("d2d-gap", 0, "cycles between flits entering a die-to-die link (0 = class default)")
		d2dFaults   = flag.String("d2d-fault", "", "die-to-die interface faults: comma-separated node:side[@cycle] entries (side north/east/south/west; omit @cycle for a static fault)")
		warmup      = flag.Int64("warmup", 2000, "warm-up packets before measurement")
		measure     = flag.Int64("measure", 30000, "measured packets")
		seed        = flag.Uint64("seed", 1, "random seed")
		faults      = flag.Int("faults", 0, "number of random permanent faults to inject")
		faultClass  = flag.String("faultclass", "critical", "random fault population: critical, noncritical")
		faultsAt    = flag.String("faults-at", "", "comma-separated cycles; inject one random -faultclass fault at each, mid-run")
		faultRate   = flag.Float64("fault-rate", 0, "mean cycles between runtime faults (Poisson schedule; 0 disables)")
		faultHor    = flag.Int64("fault-horizon", 50000, "last cycle at which -fault-rate may strike")
		audit       = flag.Int64("audit", 0, "cycles between flit-conservation audits (0 audits at termination only)")
		flits       = flag.Int("flits", 4, "flits per packet")
		hotspot     = flag.Int("hotspot", 27, "hotspot node (hotspot traffic)")
		hotFrac     = flag.Float64("hotfrac", 0.2, "fraction of traffic sent to the hotspot")
		reliable    = flag.Bool("reliable", false, "enable end-to-end reliable delivery (source retransmission, duplicate suppression, fault-region give-up)")
		retxTimeout = flag.Int64("retx-timeout", 0, "base retransmission timeout in cycles (0 = default; needs -reliable)")
		retxMax     = flag.Int64("retx-max-timeout", 0, "backoff cap in cycles (0 = default; needs -reliable)")
		retxRetries = flag.Int("retx-retries", 0, "max retransmissions per packet (0 = default; needs -reliable)")
		jsonOut     = flag.Bool("json", false, "emit the full result as JSON on stdout instead of the human summary")
		verbose     = flag.Bool("v", false, "print the full result breakdown")
		heatmap     = flag.Bool("heatmap", false, "print a per-node link-utilization heatmap")
		tracePkts   = flag.Int("trace", 0, "sample and print this many packet journeys")
		teleEvery   = flag.Int64("telemetry-every", 0, "cycles between telemetry epochs (0 disables; the series lands in the -json result and on the -serve endpoint)")
		serveAddr   = flag.String("serve", "", "serve live telemetry over HTTP at this address while the run executes (/metrics Prometheus text, /healthz, /debug/vars, /debug/pprof); keeps serving final values until interrupted")
		kernel      = flag.String("kernel", "gated", "simulation kernel: gated (activity-gated, default), soa (struct-of-arrays) or reference (tick everything)")
		shards      = flag.Int("shards", 1, "split the run across this many mesh shards ticking in parallel (bit-identical results for any value)")
		workers     = flag.Int("workers", 0, "goroutines executing shard ticks (0 = one per shard up to GOMAXPROCS)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write an allocation profile to this file at exit")
		ckptEvery   = flag.Int64("checkpoint-every", 0, "write a crash-safe snapshot every this many cycles (needs -checkpoint-dir)")
		ckptDir     = flag.String("checkpoint-dir", "", "directory for snapshot files; SIGINT/SIGTERM flush a final snapshot there and exit 128+signum")
		resumeRun   = flag.Bool("resume", false, "resume from the newest valid snapshot in -checkpoint-dir (config must match; kernel/shards/workers may differ)")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatalf("memprofile: %v", err)
		}
		defer func() {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	cfg := roco.Config{
		Width: *width, Height: *height,
		InjectionRate:   *rate,
		FlitsPerPacket:  *flits,
		WarmupPackets:   *warmup,
		MeasurePackets:  *measure,
		Seed:            *seed,
		HotspotNode:     *hotspot,
		HotspotFraction: *hotFrac,
		Reliable:        *reliable,
		Shards:          *shards,
		Workers:         *workers,
		TelemetryEvery:  *teleEvery,
	}
	if *reliable {
		cfg.RetransmitTimeout = *retxTimeout
		cfg.RetransmitMaxTimeout = *retxMax
		cfg.RetransmitMaxRetries = *retxRetries
	} else if *retxTimeout != 0 || *retxMax != 0 || *retxRetries != 0 {
		fatalf("-retx-* flags need -reliable")
	}

	switch strings.ToLower(*kernel) {
	case "gated":
	case "soa":
		cfg.SoAKernel = true
	case "reference":
		cfg.ReferenceKernel = true
	default:
		fatalf("unknown kernel %q (want gated, soa, reference)", *kernel)
	}

	multichip := false
	switch strings.ToLower(*topoName) {
	case "mesh":
	case "torus":
		cfg.Torus = true
	case "multichipmesh", "multichip-mesh":
		multichip = true
	case "multichiptorus", "multichip-torus":
		multichip = true
		cfg.Torus = true
	default:
		fatalf("unknown topology %q (want mesh, torus, multichipmesh, multichiptorus)", *topoName)
	}
	if multichip {
		if *chips == "" || *chipSize == "" {
			fatalf("-topology %s needs -chips and -chip-size", *topoName)
		}
		var err error
		if cfg.ChipsX, cfg.ChipsY, err = parseGrid(*chips); err != nil {
			fatalf("-chips: %v", err)
		}
		if cfg.ChipW, cfg.ChipH, err = parseGrid(*chipSize); err != nil {
			fatalf("-chip-size: %v", err)
		}
		if err := cfg.D2DClass.UnmarshalText([]byte(*d2dClass)); err != nil {
			fatalf("-d2d-class: %v", err)
		}
		cfg.D2DLatency, cfg.D2DGap = *d2dLatency, *d2dGap
		// The chiplet grid derives the dimensions; explicit -width/-height
		// pass through so Validate can flag a mismatch.
		if !flagWasSet("width") {
			cfg.Width = 0
		}
		if !flagWasSet("height") {
			cfg.Height = 0
		}
	} else if *chips != "" || *chipSize != "" {
		fatalf("-chips and -chip-size need a multichip -topology")
	} else if flagWasSet("d2d-class") || flagWasSet("d2d-latency") || flagWasSet("d2d-gap") {
		fatalf("-d2d-class/-d2d-latency/-d2d-gap need a multichip -topology")
	}
	// Effective global dimensions, for random fault placement and the
	// summary line.
	gridW, gridH := *width, *height
	if multichip {
		gridW, gridH = cfg.ChipsX*cfg.ChipW, cfg.ChipsY*cfg.ChipH
	}

	var ok bool
	if cfg.Router, ok = parseRouter(*routerName); !ok {
		fatalf("unknown router %q (want generic, pathsensitive, roco)", *routerName)
	}
	if cfg.Algorithm, ok = parseRouting(*routingName); !ok {
		fatalf("unknown routing %q (want xy, xyyx, adaptive)", *routingName)
	}
	if cfg.Traffic, ok = parseTraffic(*trafficName); !ok {
		fatalf("unknown traffic %q", *trafficName)
	}
	class := roco.CriticalFaults
	switch strings.ToLower(*faultClass) {
	case "critical":
	case "noncritical", "non-critical":
		class = roco.NonCriticalFaults
	default:
		fatalf("unknown fault class %q (want critical, noncritical)", *faultClass)
	}
	if *faults > 0 {
		cfg.Faults = roco.RandomFaults(class, *faults, gridW, gridH, *seed)
	}
	cfg.AuditEvery = *audit
	if *faultsAt != "" && *faultRate > 0 {
		fatalf("-faults-at and -fault-rate are mutually exclusive")
	}
	switch {
	case *faultsAt != "":
		var cycles []int64
		for _, s := range strings.Split(*faultsAt, ",") {
			c, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil || c < 0 {
				fatalf("bad -faults-at entry %q (want non-negative cycles)", s)
			}
			cycles = append(cycles, c)
		}
		// One random fault per listed cycle, at distinct nodes.
		flts := roco.RandomFaults(class, len(cycles), gridW, gridH, *seed)
		for i, c := range cycles {
			cfg.FaultSchedule = append(cfg.FaultSchedule, roco.TimedFault{Cycle: c, Fault: flts[i]})
		}
	case *faultRate > 0:
		cfg.FaultSchedule = roco.PoissonFaultSchedule(class, *faultRate, *faultHor, gridW, gridH, *seed)
	}
	if *d2dFaults != "" {
		if !multichip {
			fatalf("-d2d-fault needs a multichip -topology")
		}
		for _, spec := range strings.Split(*d2dFaults, ",") {
			f, cycle, err := parseD2DFault(spec)
			if err != nil {
				fatalf("-d2d-fault: %v", err)
			}
			if cycle < 0 {
				cfg.Faults = append(cfg.Faults, f)
			} else {
				cfg.FaultSchedule = append(cfg.FaultSchedule, roco.TimedFault{Cycle: cycle, Fault: f})
			}
		}
	}
	if !*jsonOut {
		for _, f := range cfg.Faults {
			fmt.Printf("fault: %s\n", describeFault(f))
		}
		for _, tf := range cfg.FaultSchedule {
			fmt.Printf("scheduled fault: cycle %d, %s\n", tf.Cycle, describeFault(tf.Fault))
		}
	}

	checkpointing := *ckptEvery > 0 || *ckptDir != "" || *resumeRun

	var res roco.Result
	var detail roco.Detailed
	var traces []roco.PacketTrace
	needDetail := (*heatmap || *verbose) && *serveAddr == "" && !checkpointing
	switch {
	case checkpointing:
		if *serveAddr != "" || *tracePkts > 0 || *heatmap {
			fatalf("-checkpoint-every/-checkpoint-dir/-resume are incompatible with -serve, -trace and -heatmap")
		}
		res = runCheckpointed(cfg, *ckptDir, *ckptEvery, *resumeRun, *jsonOut)
	case *serveAddr != "":
		if *tracePkts > 0 || *heatmap {
			fatalf("-serve is incompatible with -trace and -heatmap")
		}
		res = runServed(cfg, *serveAddr)
	case *tracePkts > 0:
		res, traces = roco.RunTraced(cfg, *tracePkts)
	case needDetail:
		detail = roco.RunDetailed(cfg)
		res = detail.Result
	default:
		res = roco.Run(cfg)
	}
	if *jsonOut {
		// The Result carries everything downstream tools need: summary
		// metrics, the drop breakdown, reliability counters with give-ups,
		// the per-fault log, the watchdog report, and the telemetry epoch
		// series when -telemetry-every is set.
		if err := roco.WriteJSON(os.Stdout, res); err != nil {
			fatalf("json: %v", err)
		}
		exitIfWatchdog(res)
		lingerIfServing(*serveAddr)
		return
	}
	shape := fmt.Sprintf("%dx%d %s", gridW, gridH, strings.ToLower(*topoName))
	if multichip {
		shape = fmt.Sprintf("%dx%d chiplets of %dx%d (%s, d2d %s)",
			cfg.ChipsX, cfg.ChipsY, cfg.ChipW, cfg.ChipH, strings.ToLower(*topoName), cfg.D2DClass)
	}
	fmt.Printf("%s | %s routing | %s traffic | rate %.2f | %s\n",
		cfg.Router, cfg.Algorithm, cfg.Traffic, *rate, shape)
	fmt.Printf("  avg latency      %10.2f cycles\n", res.AvgLatency)
	fmt.Printf("  completion       %10.4f\n", res.Completion)
	fmt.Printf("  throughput       %10.4f flits/node/cycle\n", res.Throughput)
	fmt.Printf("  energy/packet    %10.4f nJ\n", res.EnergyPerPacketNJ)
	fmt.Printf("  PEF              %10.2f nJ*cycles/prob\n", res.PEF)
	if *verbose {
		fmt.Printf("  p95 latency      %10.1f cycles\n", res.P95Latency)
		fmt.Printf("  p99 latency      %10.1f cycles\n", res.P99Latency)
		fmt.Printf("  max latency      %10.1f cycles\n", res.MaxLatency)
		fmt.Printf("  source queue     %10.2f cycles (included in latency)\n", res.SourceQueueDelay)
		fmt.Printf("  contention row   %10.4f\n", res.ContentionRow)
		fmt.Printf("  contention col   %10.4f\n", res.ContentionCol)
		fmt.Printf("  dynamic energy   %10.2f nJ\n", res.DynamicNJ)
		fmt.Printf("  leakage energy   %10.2f nJ\n", res.LeakageNJ)
		fmt.Printf("  delivered        %10d / %d packets\n", res.DeliveredPackets, res.GeneratedPackets)
		fmt.Printf("  simulated        %10d cycles (saturated=%v)\n", res.Cycles, res.Saturated)
		if needDetail {
			e := detail.Energy
			fmt.Printf("  energy split: buffers %.0f, crossbar %.0f, links %.0f, arbitration %.0f, routing %.0f, ejection %.0f, leakage %.0f nJ\n",
				e.BuffersNJ, e.CrossbarNJ, e.LinksNJ, e.ArbitrationNJ, e.RoutingNJ, e.EjectionNJ, e.LeakageNJ)
		}
	}
	for _, ev := range res.FaultEvents {
		status := "never recovered"
		if ev.Recovered {
			status = fmt.Sprintf("recovered in %d cycles (%.3f -> floor %.3f -> %.3f flits/cycle)",
				ev.RecoveryCycles, ev.PreRate, ev.FloorRate, ev.PostRate)
		}
		fmt.Printf("  fault @%-8d node %d %-10s %s\n", ev.Cycle, ev.Fault.Node, ev.Fault.Component, status)
	}
	if res.DroppedFlits > 0 || res.BrokenPackets > 0 {
		fmt.Printf("  dropped          %10d flits (%d broken packets; %d unroutable, %d in-flight, %d dead-node)\n",
			res.DroppedFlits, res.BrokenPackets, res.DroppedUnroutable, res.DroppedInFlight, res.DroppedDeadNode)
	}
	if *reliable {
		fmt.Printf("  reliability      %10d retransmitted, %d recovered, %d duplicates suppressed, %d given up, residual loss %d\n",
			res.Retransmissions, res.RecoveredPackets, res.DuplicatePackets, len(res.GiveUps), res.ResidualLoss)
		for _, g := range res.GiveUps {
			fmt.Printf("  gave up          %d->%d after %d attempts @%d (%s)\n", g.Src, g.Dst, g.Attempts, g.Cycle, g.Reason)
		}
	}
	if res.Watchdog != "" {
		fmt.Println(res.Watchdog)
	}
	if t := res.Telemetry; t != nil {
		fmt.Printf("  telemetry        %10d epochs x %d cycles (%d retained, %d evicted)\n",
			t.Totals.Epochs, t.Every, len(t.Epochs), t.EvictedEpochs)
	}
	if *heatmap && *tracePkts == 0 && detail.Nodes != nil {
		fmt.Println()
		detail.RenderHeatmap(os.Stdout)
	}
	if len(traces) > 0 {
		fmt.Println()
		for _, t := range traces {
			fmt.Println(t)
		}
	}
	exitIfWatchdog(res)
	lingerIfServing(*serveAddr)
}

// exitIfWatchdog turns a watchdog termination into a distinct failure
// exit: the run produced a result, but the network wedged — scripts and
// sweep harnesses must not mistake that for a healthy completion. The
// structured report goes to stderr (stdout carries the result).
func exitIfWatchdog(res roco.Result) {
	if res.Watchdog == "" {
		return
	}
	fmt.Fprintf(os.Stderr, "rocosim: livelock watchdog fired; run terminated by the inactivity rule\n%s\n", res.Watchdog)
	os.Exit(exitWatchdog)
}

// runCheckpointed executes (or resumes) the run with periodic crash-safe
// snapshots in dir, flushing a final snapshot and exiting 128+signum on
// SIGINT/SIGTERM so an interrupted run is resumable with -resume.
func runCheckpointed(cfg roco.Config, dir string, every int64, resume, jsonOut bool) roco.Result {
	if dir == "" {
		fatalf("-checkpoint-every and -resume need -checkpoint-dir")
	}
	var sim *roco.Sim
	if resume {
		s, err := roco.ResumeLatest(dir, cfg)
		if err != nil {
			fatalf("resume: %v", err)
		}
		fmt.Fprintf(os.Stderr, "rocosim: resumed from %s at cycle %d\n", dir, s.Cycle())
		sim = s
	} else {
		sim = roco.NewSim(cfg)
	}

	stop := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	var caught os.Signal
	go func() {
		caught = <-sigc
		close(stop)
	}()
	res, interrupted, err := sim.RunCheckpointed(roco.CheckpointOptions{Every: every, Dir: dir, Stop: stop})
	signal.Stop(sigc)
	if err != nil {
		fatalf("checkpoint: %v", err)
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "rocosim: %v at cycle %d; snapshot flushed to %s (resume with -resume)\n",
			caught, sim.Cycle(), dir)
		code := 128 + int(syscall.SIGINT)
		if sg, ok := caught.(syscall.Signal); ok {
			code = 128 + int(sg)
		}
		if jsonOut {
			// Emit the partial result so a supervising harness still sees
			// where the run stood when the signal landed.
			_ = roco.WriteJSON(os.Stdout, res)
		}
		os.Exit(code)
	}
	return res
}

// liveServer is the -serve endpoint, started by runServed and drained
// by lingerIfServing on SIGINT/SIGTERM.
var liveServer *serve.Server

// runServed executes the simulation as a LiveRun with the telemetry HTTP
// endpoint mounted for its whole duration. expvar and net/http/pprof
// register themselves on the default mux via their imports, so the one
// listener also serves /debug/vars and /debug/pprof.
func runServed(cfg roco.Config, addr string) roco.Result {
	live := roco.NewLiveRun(cfg)
	http.Handle("/metrics", live.MetricsHandler())
	http.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatalf("serve: %v", err)
	}
	// The resolved address matters when the user asked for port 0.
	fmt.Fprintf(os.Stderr, "rocosim: serving telemetry on http://%s/metrics\n", ln.Addr())
	liveServer = serve.Start(ln, nil, serve.Options{
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "rocosim: "+format+"\n", args...)
		},
	})
	return live.Run()
}

// lingerIfServing keeps a -serve process alive after the run so the
// final epoch and totals stay scrapeable, then shuts down gracefully —
// in-flight scrapes drained under a timeout — when SIGINT/SIGTERM
// arrives, instead of blocking forever and needing a kill.
func lingerIfServing(addr string) {
	if addr == "" || liveServer == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "rocosim: run complete; serving final telemetry (SIGINT/SIGTERM to exit)")
	if err := liveServer.Wait(); err != nil {
		fatalf("serve: %v", err)
	}
}

// The flag parsers delegate to the enums' TextUnmarshaler, so the CLI
// and JSON job specs accept exactly the same tokens and aliases.

func parseRouter(s string) (roco.RouterKind, bool) {
	var k roco.RouterKind
	if err := k.UnmarshalText([]byte(s)); err != nil {
		return 0, false
	}
	return k, true
}

func parseRouting(s string) (roco.Algorithm, bool) {
	var a roco.Algorithm
	if err := a.UnmarshalText([]byte(s)); err != nil {
		return 0, false
	}
	return a, true
}

func parseTraffic(s string) (roco.TrafficPattern, bool) {
	var p roco.TrafficPattern
	if err := p.UnmarshalText([]byte(s)); err != nil {
		return 0, false
	}
	return p, true
}

// flagWasSet reports whether the named flag appeared on the command line.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// parseGrid parses a "WxH" dimension pair.
func parseGrid(s string) (int, int, error) {
	a, b, ok := strings.Cut(strings.ToLower(strings.TrimSpace(s)), "x")
	if !ok {
		return 0, 0, fmt.Errorf("bad grid %q (want WxH, e.g. 2x2)", s)
	}
	w, err1 := strconv.Atoi(strings.TrimSpace(a))
	h, err2 := strconv.Atoi(strings.TrimSpace(b))
	if err1 != nil || err2 != nil || w < 1 || h < 1 {
		return 0, 0, fmt.Errorf("bad grid %q (want positive WxH)", s)
	}
	return w, h, nil
}

// parseD2DFault parses one node:side[@cycle] interface-fault spec. The
// returned cycle is -1 for a static fault (no @cycle suffix).
func parseD2DFault(spec string) (roco.Fault, int64, error) {
	s := strings.TrimSpace(spec)
	cycle := int64(-1)
	if body, at, ok := strings.Cut(s, "@"); ok {
		c, err := strconv.ParseInt(strings.TrimSpace(at), 10, 64)
		if err != nil || c < 0 {
			return roco.Fault{}, 0, fmt.Errorf("bad cycle in %q (want node:side[@cycle])", spec)
		}
		cycle, s = c, body
	}
	nodeStr, sideStr, ok := strings.Cut(s, ":")
	if !ok {
		return roco.Fault{}, 0, fmt.Errorf("bad spec %q (want node:side[@cycle])", spec)
	}
	node, err := strconv.Atoi(strings.TrimSpace(nodeStr))
	if err != nil || node < 0 {
		return roco.Fault{}, 0, fmt.Errorf("bad node in %q (want node:side[@cycle])", spec)
	}
	var side roco.Side
	switch strings.ToLower(strings.TrimSpace(sideStr)) {
	case "north", "n":
		side = roco.SideNorth
	case "east", "e":
		side = roco.SideEast
	case "south", "s":
		side = roco.SideSouth
	case "west", "w":
		side = roco.SideWest
	default:
		return roco.Fault{}, 0, fmt.Errorf("bad side %q (want north, east, south, west)", sideStr)
	}
	return roco.Fault{Node: node, Component: roco.D2DInterface, Side: side}, cycle, nil
}

// describeFault renders one configured fault for the pre-run log.
func describeFault(f roco.Fault) string {
	if f.Component == roco.D2DInterface {
		return fmt.Sprintf("node %d, %s (interface toward %s)", f.Node, f.Component, f.Side)
	}
	return fmt.Sprintf("node %d, %s (module %d, vc %d)", f.Node, f.Component, f.Module, f.VC)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rocosim: "+format+"\n", args...)
	os.Exit(2)
}
