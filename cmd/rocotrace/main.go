// Command rocotrace inspects traffic offline, in two modes.
//
// Generator mode (the default) draws a synthetic injection trace for one
// node and prints per-window rates and burstiness statistics, which is how
// the self-similar and MPEG-2 generators were validated against their
// target mean rates:
//
//	rocotrace -traffic selfsimilar -rate 0.3 -cycles 200000 -window 1000
//
// Telemetry mode (-telemetry) runs a full simulation with epoch telemetry
// enabled and exports the time series — epoch CSV, per-node CSV, JSON, or
// per-epoch link-utilization heatmap tables:
//
//	rocotrace -telemetry -router roco -rate 0.30 -every 256 -format csv
//	rocotrace -telemetry -router roco -rate 0.30 -format heatmap
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/rocosim/roco"
	"github.com/rocosim/roco/internal/stats"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/traffic"
)

func main() {
	var (
		trafficName = flag.String("traffic", "selfsimilar", "pattern: uniform, transpose, selfsimilar, mpeg2, bitcomplement, hotspot")
		rate        = flag.Float64("rate", 0.30, "target injection rate in flits/node/cycle")
		cycles      = flag.Int64("cycles", 200000, "trace length in cycles (generator mode)")
		window      = flag.Int64("window", 1000, "averaging window for the rate profile (generator mode)")
		node        = flag.Int("node", 0, "node whose generator to trace (generator mode)")
		seed        = flag.Uint64("seed", 1, "random seed")
		dump        = flag.Bool("dump", false, "print every generated packet (generator mode)")
		telemetry   = flag.Bool("telemetry", false, "run a simulation and export its telemetry epoch series instead of tracing a generator")
		format      = flag.String("format", "csv", "telemetry export: csv (epoch rows), nodes (per-epoch-per-node rows), json, heatmap (per-epoch utilization tables)")
		every       = flag.Int64("every", 256, "telemetry epoch length in cycles (telemetry mode)")
		routerName  = flag.String("router", "roco", "router architecture for telemetry mode: generic, pathsensitive, roco, pdr")
		routingName = flag.String("routing", "xy", "routing algorithm for telemetry mode: xy, xyyx, adaptive")
		width       = flag.Int("width", 8, "mesh width (telemetry mode)")
		height      = flag.Int("height", 8, "mesh height (telemetry mode)")
		warmup      = flag.Int64("warmup", 2000, "warm-up packets (telemetry mode)")
		measure     = flag.Int64("measure", 30000, "measured packets (telemetry mode)")
	)
	flag.Parse()

	if *telemetry {
		runTelemetry(telemetryConfig{
			router: *routerName, routing: *routingName, traffic: *trafficName,
			rate: *rate, width: *width, height: *height,
			warmup: *warmup, measure: *measure, seed: *seed,
			every: *every, format: *format,
		})
		return
	}

	var pattern traffic.Pattern
	switch strings.ToLower(*trafficName) {
	case "uniform":
		pattern = traffic.Uniform
	case "transpose":
		pattern = traffic.Transpose
	case "selfsimilar", "self-similar", "web":
		pattern = traffic.SelfSimilar
	case "mpeg2", "mpeg", "video":
		pattern = traffic.MPEG2
	case "bitcomplement", "bit-complement":
		pattern = traffic.BitComplement
	case "hotspot":
		pattern = traffic.Hotspot
	default:
		fmt.Fprintf(os.Stderr, "rocotrace: unknown traffic %q\n", *trafficName)
		os.Exit(2)
	}

	topo := topology.NewMesh(8, 8)
	gens := traffic.New(traffic.Config{
		Pattern:         pattern,
		Rate:            *rate,
		FlitsPerPacket:  4,
		HotspotNode:     27,
		HotspotFraction: 0.2,
	}, topo, stats.NewRNG(*seed))
	gen := gens[*node]

	var total int64
	var windowCount int64
	var winStats stats.Running
	dsts := map[int]int64{}
	for c := int64(0); c < *cycles; c++ {
		if dst, ok := gen.NextPacket(c); ok {
			total++
			windowCount++
			dsts[dst]++
			if *dump {
				fmt.Printf("%d -> %d\n", c, dst)
			}
		}
		if (c+1)%*window == 0 {
			winStats.Add(float64(windowCount))
			windowCount = 0
		}
	}

	pktRate := float64(total) / float64(*cycles)
	fmt.Printf("pattern %s, node %d, %d cycles\n", pattern, *node, *cycles)
	fmt.Printf("  packets generated   %d\n", total)
	fmt.Printf("  mean rate           %.4f flits/node/cycle (target %.4f)\n", pktRate*4, *rate)
	fmt.Printf("  windows of %d cyc: mean %.2f pkts, sd %.2f, max %.0f\n",
		*window, winStats.Mean(), winStats.StdDev(), winStats.Max())
	if winStats.Mean() > 0 {
		// Index of dispersion: 1.0 for Poisson-like processes; bursty
		// (self-similar, video) traffic is substantially higher.
		fmt.Printf("  index of dispersion %.2f (Poisson = 1.0)\n",
			winStats.Variance()/winStats.Mean())
	}
	fmt.Printf("  distinct dests      %d\n", len(dsts))
}

// telemetryConfig carries the flag values of telemetry mode.
type telemetryConfig struct {
	router, routing, traffic string
	rate                     float64
	width, height            int
	warmup, measure          int64
	seed                     uint64
	every                    int64
	format                   string
}

// runTelemetry executes one simulation with epoch telemetry enabled and
// writes the series to stdout in the requested format.
func runTelemetry(tc telemetryConfig) {
	cfg := roco.Config{
		Width: tc.width, Height: tc.height,
		InjectionRate:  tc.rate,
		WarmupPackets:  tc.warmup,
		MeasurePackets: tc.measure,
		Seed:           tc.seed,
		TelemetryEvery: tc.every,
	}
	var ok bool
	if cfg.Router, ok = parseRouter(tc.router); !ok {
		fatalf("unknown router %q (want generic, pathsensitive, roco, pdr)", tc.router)
	}
	if cfg.Algorithm, ok = parseRouting(tc.routing); !ok {
		fatalf("unknown routing %q (want xy, xyyx, adaptive)", tc.routing)
	}
	if cfg.Traffic, ok = parseRocoTraffic(tc.traffic); !ok {
		fatalf("unknown traffic %q", tc.traffic)
	}
	if tc.every <= 0 {
		fatalf("-every must be positive in telemetry mode")
	}

	t := roco.Run(cfg).Telemetry
	switch strings.ToLower(tc.format) {
	case "csv":
		if err := t.WriteCSV(os.Stdout); err != nil {
			fatalf("csv: %v", err)
		}
	case "nodes", "nodecsv":
		if err := t.WriteNodeCSV(os.Stdout); err != nil {
			fatalf("nodes: %v", err)
		}
	case "json":
		if err := roco.WriteJSON(os.Stdout, t); err != nil {
			fatalf("json: %v", err)
		}
	case "heatmap":
		for i := range t.Epochs {
			if i > 0 {
				fmt.Println()
			}
			t.RenderHeatmap(os.Stdout, &t.Epochs[i])
		}
	default:
		fatalf("unknown format %q (want csv, nodes, json, heatmap)", tc.format)
	}
}

func parseRouter(s string) (roco.RouterKind, bool) {
	switch strings.ToLower(s) {
	case "generic", "gen":
		return roco.Generic, true
	case "pathsensitive", "path-sensitive", "ps":
		return roco.PathSensitive, true
	case "roco":
		return roco.RoCo, true
	case "pdr":
		return roco.PDR, true
	}
	return 0, false
}

func parseRouting(s string) (roco.Algorithm, bool) {
	switch strings.ToLower(s) {
	case "xy", "dor":
		return roco.XY, true
	case "xyyx", "xy-yx":
		return roco.XYYX, true
	case "adaptive", "oddeven", "odd-even":
		return roco.Adaptive, true
	}
	return 0, false
}

func parseRocoTraffic(s string) (roco.TrafficPattern, bool) {
	switch strings.ToLower(s) {
	case "uniform":
		return roco.Uniform, true
	case "transpose":
		return roco.Transpose, true
	case "selfsimilar", "self-similar", "web":
		return roco.SelfSimilar, true
	case "mpeg2", "mpeg", "video":
		return roco.MPEG2, true
	case "bitcomplement", "bit-complement":
		return roco.BitComplement, true
	case "hotspot":
		return roco.Hotspot, true
	}
	return 0, false
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rocotrace: "+format+"\n", args...)
	os.Exit(2)
}
