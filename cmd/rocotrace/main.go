// Command rocotrace inspects the traffic generators: it draws a synthetic
// injection trace for one node and prints per-window rates and burstiness
// statistics, which is how the self-similar and MPEG-2 generators were
// validated against their target mean rates.
//
// Example:
//
//	rocotrace -traffic selfsimilar -rate 0.3 -cycles 200000 -window 1000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/rocosim/roco/internal/stats"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/traffic"
)

func main() {
	var (
		trafficName = flag.String("traffic", "selfsimilar", "pattern: uniform, transpose, selfsimilar, mpeg2, bitcomplement, hotspot")
		rate        = flag.Float64("rate", 0.30, "target injection rate in flits/node/cycle")
		cycles      = flag.Int64("cycles", 200000, "trace length in cycles")
		window      = flag.Int64("window", 1000, "averaging window for the rate profile")
		node        = flag.Int("node", 0, "node whose generator to trace")
		seed        = flag.Uint64("seed", 1, "random seed")
		dump        = flag.Bool("dump", false, "print every generated packet (cycle and destination)")
	)
	flag.Parse()

	var pattern traffic.Pattern
	switch strings.ToLower(*trafficName) {
	case "uniform":
		pattern = traffic.Uniform
	case "transpose":
		pattern = traffic.Transpose
	case "selfsimilar", "self-similar", "web":
		pattern = traffic.SelfSimilar
	case "mpeg2", "mpeg", "video":
		pattern = traffic.MPEG2
	case "bitcomplement", "bit-complement":
		pattern = traffic.BitComplement
	case "hotspot":
		pattern = traffic.Hotspot
	default:
		fmt.Fprintf(os.Stderr, "rocotrace: unknown traffic %q\n", *trafficName)
		os.Exit(2)
	}

	topo := topology.NewMesh(8, 8)
	gens := traffic.New(traffic.Config{
		Pattern:         pattern,
		Rate:            *rate,
		FlitsPerPacket:  4,
		HotspotNode:     27,
		HotspotFraction: 0.2,
	}, topo, stats.NewRNG(*seed))
	gen := gens[*node]

	var total int64
	var windowCount int64
	var winStats stats.Running
	dsts := map[int]int64{}
	for c := int64(0); c < *cycles; c++ {
		if dst, ok := gen.NextPacket(c); ok {
			total++
			windowCount++
			dsts[dst]++
			if *dump {
				fmt.Printf("%d -> %d\n", c, dst)
			}
		}
		if (c+1)%*window == 0 {
			winStats.Add(float64(windowCount))
			windowCount = 0
		}
	}

	pktRate := float64(total) / float64(*cycles)
	fmt.Printf("pattern %s, node %d, %d cycles\n", pattern, *node, *cycles)
	fmt.Printf("  packets generated   %d\n", total)
	fmt.Printf("  mean rate           %.4f flits/node/cycle (target %.4f)\n", pktRate*4, *rate)
	fmt.Printf("  windows of %d cyc: mean %.2f pkts, sd %.2f, max %.0f\n",
		*window, winStats.Mean(), winStats.StdDev(), winStats.Max())
	if winStats.Mean() > 0 {
		// Index of dispersion: 1.0 for Poisson-like processes; bursty
		// (self-similar, video) traffic is substantially higher.
		fmt.Printf("  index of dispersion %.2f (Poisson = 1.0)\n",
			winStats.Variance()/winStats.Mean())
	}
	fmt.Printf("  distinct dests      %d\n", len(dsts))
}
