package roco

import (
	"strings"
	"testing"
)

func TestFindSaturation(t *testing.T) {
	opts := QuickOptions()
	opts.Measure = 2500
	res := FindSaturation(opts, RoCo, XY)
	if res.Rate < 0.05 || res.Rate > 0.6 {
		t.Fatalf("implausible saturation rate %.3f", res.Rate)
	}
	if res.LatencyAtRate <= 0 {
		t.Fatalf("no latency recorded at the saturation point")
	}
	t.Logf("RoCo XY saturation ~ %.3f flits/node/cycle (lat %.1f)", res.Rate, res.LatencyAtRate)
}

func TestSaturationStudyRender(t *testing.T) {
	opts := QuickOptions()
	opts.Measure = 1500
	study := RunSaturationStudy(opts, XY)
	if len(study.Results) != 3 {
		t.Fatalf("got %d results", len(study.Results))
	}
	var sb strings.Builder
	study.Render(&sb)
	if !strings.Contains(sb.String(), "Saturation throughput") {
		t.Error("render missing title")
	}
}
