package roco

import (
	"fmt"
	"io"
	"math"

	"github.com/rocosim/roco/internal/fault"
	"github.com/rocosim/roco/internal/metrics"
	"github.com/rocosim/roco/internal/network"
	"github.com/rocosim/roco/internal/power"
	"github.com/rocosim/roco/internal/protocol"
	"github.com/rocosim/roco/internal/report"
	"github.com/rocosim/roco/internal/router"
	"github.com/rocosim/roco/internal/topology"
	"github.com/rocosim/roco/internal/traffic"
)

// buildNetwork constructs a wired simulation instance plus the
// router-kind power profile; Run, RunDetailed and RunTraced share it.
func buildNetwork(cfg Config, traceEvery uint64) (*network.Network, power.Profile) {
	build, structure := builderFor(cfg.Router)
	if cfg.DisableMirrorSA && cfg.Router == RoCo {
		inner := build
		build = func(id int, e *router.RouteEngine) router.Router {
			r := inner(id, e)
			r.(interface{ DisableMirror() }).DisableMirror()
			return r
		}
	}
	faults := make([]fault.Fault, len(cfg.Faults))
	for i, f := range cfg.Faults {
		faults[i] = f.internal()
	}
	events := make([]fault.Event, len(cfg.FaultSchedule))
	for i, tf := range cfg.FaultSchedule {
		events[i] = fault.Event{Cycle: tf.Cycle, Fault: tf.Fault.internal()}
	}
	topo := buildTopology(cfg)
	profile := power.NewProfile(structure)
	d2dLat, d2dGap := 0, 0
	if cfg.multichip() {
		d2dLat, d2dGap = cfg.d2dTiming()
		_, _, profile.D2DXfer = cfg.D2DClass.params()
	}
	net := network.New(network.Config{
		Topo:       topo,
		D2DLatency: d2dLat,
		D2DGap:     d2dGap,
		Algorithm: cfg.Algorithm.internal(),
		Build:     build,
		Traffic: traffic.Config{
			Pattern:         cfg.Traffic.internal(),
			Rate:            cfg.InjectionRate,
			FlitsPerPacket:  cfg.FlitsPerPacket,
			HotspotNode:     cfg.HotspotNode,
			HotspotFraction: cfg.HotspotFraction,
		},
		WarmupPackets:     cfg.WarmupPackets,
		MeasurePackets:    cfg.MeasurePackets,
		Faults:            faults,
		Schedule:          fault.NewSchedule(events),
		AuditEvery:        cfg.AuditEvery,
		MaxCycles:         cfg.MaxCycles,
		InactivityLimit:   cfg.InactivityLimit,
		Seed:              cfg.Seed,
		TraceEvery:        traceEvery,
		ReferenceKernel:   cfg.ReferenceKernel,
		SoAKernel:         cfg.SoAKernel,
		Shards:            cfg.Shards,
		Workers:           cfg.Workers,
		TelemetryEvery:    cfg.TelemetryEvery,
		TelemetryCapacity: cfg.TelemetryCapacity,
		TelemetryProfile:  profile,
		Reliable:          cfg.Reliable,
		Protocol: protocol.Params{
			Timeout:    cfg.RetransmitTimeout,
			MaxTimeout: cfg.RetransmitMaxTimeout,
			MaxRetries: cfg.RetransmitMaxRetries,
		},
	})
	return net, profile
}

// buildTopology maps the grid fields of a validated Config to a concrete
// topology: a chiplet grid when ChipsX et al. are set (wrapped by Torus),
// the flat torus or mesh otherwise.
func buildTopology(cfg Config) topology.Topology {
	switch {
	case cfg.multichip() && cfg.Torus:
		return topology.NewMultiChipTorus(cfg.ChipsX, cfg.ChipsY, cfg.ChipW, cfg.ChipH)
	case cfg.multichip():
		return topology.NewMultiChipMesh(cfg.ChipsX, cfg.ChipsY, cfg.ChipW, cfg.ChipH)
	case cfg.Torus:
		return topology.NewTorus(cfg.Width, cfg.Height)
	default:
		return topology.NewMesh(cfg.Width, cfg.Height)
	}
}

// runNetwork executes one simulation and returns the raw network result
// together with the router-kind power profile.
func runNetwork(cfg Config) (network.Result, power.Profile) {
	net, profile := buildNetwork(cfg, 0)
	return net.Run(), profile
}

// TraceEvent is one observation of a traced packet's journey.
type TraceEvent struct {
	// Node is the router that observed the packet.
	Node int
	// Cycle is the observation time.
	Cycle int64
	// Kind is "inject", "arrive", "deliver" or "drop".
	Kind string
}

// PacketTrace is the sampled journey of one packet.
type PacketTrace struct {
	PacketID  uint64
	Src, Dst  int
	Completed bool
	Events    []TraceEvent
}

// String renders the journey on one line.
func (t PacketTrace) String() string {
	s := fmt.Sprintf("pkt %d %d->%d:", t.PacketID, t.Src, t.Dst)
	for i, e := range t.Events {
		if i == 0 {
			s += fmt.Sprintf(" %s@%d n%d", e.Kind, e.Cycle, e.Node)
		} else {
			s += fmt.Sprintf(" ->(%d) %s n%d", e.Cycle-t.Events[i-1].Cycle, e.Kind, e.Node)
		}
	}
	return s
}

// RunTraced executes one simulation while sampling approximately the given
// number of packet journeys, spread evenly over the run.
func RunTraced(cfg Config, samples int) (Result, []PacketTrace) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("roco: invalid config: %v", err))
	}
	every := uint64(1)
	if samples > 0 {
		total := cfg.WarmupPackets + cfg.MeasurePackets
		if n := uint64(total) / uint64(samples); n > 1 {
			every = n
		}
	}
	net, profile := buildNetwork(cfg, every)
	res := net.Run()
	var traces []PacketTrace
	for _, rec := range net.Traces() {
		t := PacketTrace{
			PacketID:  rec.PacketID,
			Src:       rec.Src,
			Dst:       rec.Dst,
			Completed: rec.Completed(),
		}
		for _, v := range rec.Visits {
			t.Events = append(t.Events, TraceEvent{Node: v.Node, Cycle: v.Cycle, Kind: v.Kind.String()})
		}
		traces = append(traces, t)
	}
	return summarize(cfg, res, profile), traces
}

// NodeStats summarizes one router's measured-window activity for spatial
// analysis.
type NodeStats struct {
	// LinkFlitsByDir counts flits this router drove onto each outgoing
	// link (indexed North=0, East=1, South=2, West=3).
	LinkFlitsByDir [4]int64
	// Delivered counts flits handed to this node's PE.
	Delivered int64
	// Dropped counts flits discarded here by static fault handling.
	Dropped int64
}

// EnergyBreakdown splits a run's energy by component group (nJ totals
// over the measurement window).
type EnergyBreakdown struct {
	BuffersNJ, CrossbarNJ, LinksNJ float64
	ArbitrationNJ, RoutingNJ       float64
	EjectionNJ, LeakageNJ          float64
}

// Detailed extends Result with per-node spatial statistics and the
// per-component energy split.
type Detailed struct {
	Result
	Width, Height int
	// ChipsX..ChipH echo the chiplet grid of the run (all zero on a
	// single-die topology); Torus echoes the wrap-around flag. Together
	// they let the spatial views rebuild the exact topology.
	ChipsX, ChipsY, ChipW, ChipH int
	Torus                        bool
	Nodes                        []NodeStats
	Energy                       EnergyBreakdown
	// MeasuredCycles is the span the per-node counters cover.
	MeasuredCycles int64
}

// RunDetailed executes one simulation and keeps the per-node activity
// split, for congestion heatmaps and spatial debugging.
func RunDetailed(cfg Config) Detailed {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("roco: invalid config: %v", err))
	}
	res, profile := runNetwork(cfg)
	d := Detailed{
		Result:         summarize(cfg, res, profile),
		Width:          cfg.Width,
		Height:         cfg.Height,
		ChipsX:         cfg.ChipsX,
		ChipsY:         cfg.ChipsY,
		ChipW:          cfg.ChipW,
		ChipH:          cfg.ChipH,
		Torus:          cfg.Torus,
		MeasuredCycles: res.MeasuredCycles,
		Nodes:          make([]NodeStats, len(res.PerRouter)),
	}
	for i, a := range res.PerRouter {
		d.Nodes[i] = NodeStats{
			LinkFlitsByDir: a.LinkFlitsByDir,
			Delivered:      a.Ejections + a.EarlyEjections,
			Dropped:        a.DroppedFlits,
		}
	}
	split := power.AccountDetailed(profile, &res.Activity)
	d.Energy = EnergyBreakdown{
		BuffersNJ: split.BuffersNJ, CrossbarNJ: split.CrossbarNJ, LinksNJ: split.LinksNJ,
		ArbitrationNJ: split.ArbitrationNJ, RoutingNJ: split.RoutingNJ,
		EjectionNJ: split.EjectionNJ, LeakageNJ: split.LeakageNJ,
	}
	return d
}

// LinkUtilization returns, per node, the mean outgoing-link utilization in
// flits per link per cycle (total link flits divided by the node's live
// link count and the measured span).
func (d Detailed) LinkUtilization() []float64 {
	topo := buildTopology(Config{
		Width: d.Width, Height: d.Height, Torus: d.Torus,
		ChipsX: d.ChipsX, ChipsY: d.ChipsY, ChipW: d.ChipW, ChipH: d.ChipH,
	})
	out := make([]float64, len(d.Nodes))
	if d.MeasuredCycles == 0 {
		return out
	}
	for id, n := range d.Nodes {
		links := 0
		var flits int64
		for _, dir := range topology.CardinalDirections {
			if _, ok := topo.Neighbor(id, dir); ok {
				links++
				flits += n.LinkFlitsByDir[dir]
			}
		}
		if links > 0 {
			out[id] = float64(flits) / float64(links) / float64(d.MeasuredCycles)
		}
	}
	return out
}

// RenderHeatmap writes an ASCII link-utilization heatmap of the mesh. On
// a chiplet topology the grid is partitioned by die boundaries, so the
// hierarchical coordinates read directly off the map.
func (d Detailed) RenderHeatmap(w io.Writer) {
	title := fmt.Sprintf("Link utilization (flits/link/cycle), %dx%d mesh", d.Width, d.Height)
	hm := &report.Heatmap{
		Title:  title,
		Width:  d.Width,
		Height: d.Height,
		Value:  d.LinkUtilization(),
	}
	if d.ChipsX > 0 {
		hm.Title = fmt.Sprintf("Link utilization (flits/link/cycle), %dx%d chiplets of %dx%d nodes",
			d.ChipsX, d.ChipsY, d.ChipW, d.ChipH)
		hm.ChipW, hm.ChipH = d.ChipW, d.ChipH
	}
	hm.Render(w)
}

// summarize converts a raw network result plus power profile into the
// public Result (shared by Run and RunDetailed).
func summarize(cfg Config, res network.Result, profile power.Profile) Result {
	energy := power.Account(profile, &res.Activity)
	// Account prices every link flit at the on-die transfer energy; add the
	// die-to-die premium for the flits that crossed boundary links.
	d2dNJ := power.D2DPremiumNJ(profile, res.D2DLinkFlits)
	energy.DynamicNJ += d2dNJ
	perPkt := energy.PerPacketNJ(res.Completion.Delivered)
	out := Result{
		AvgLatency:        res.Summary.AvgLatency,
		P95Latency:        res.Summary.P95Latency,
		P99Latency:        res.Summary.P99Latency,
		MaxLatency:        res.Summary.MaxLatency,
		Completion:        res.Summary.Completion,
		DeliveredPackets:  res.Summary.DeliveredPkts,
		GeneratedPackets:  res.Summary.GeneratedPkts,
		Throughput:        res.Summary.ThroughputFNC,
		EnergyPerPacketNJ: perPkt,
		DynamicNJ:         energy.DynamicNJ,
		LeakageNJ:         energy.LeakageNJ,
		D2DFlits:          res.D2DLinkFlits,
		D2DEnergyNJ:       d2dNJ,
		PEF:               metrics.PEF(res.Summary.AvgLatency, perPkt, res.Summary.Completion),
		SourceQueueDelay:  res.Summary.AvgSourceQ,
		ContentionRow:     res.Summary.ContentionRow,
		ContentionCol:     res.Summary.ContentionCol,
		Contention:        res.Summary.ContentionAll,
		Cycles:            res.Summary.Cycles,
		Saturated:         res.Saturated,
		DroppedFlits:      res.DroppedFlits,
		BrokenPackets:     res.BrokenPackets,
		DroppedUnroutable: res.Drops.Unroutable,
		DroppedInFlight:   res.Drops.InFlight,
		DroppedDeadNode:   res.Drops.DeadDrain,
		Retransmissions:   res.Retransmissions,
		RecoveredPackets:  res.RecoveredPackets,
		DuplicatePackets:  res.DuplicatePackets,
		ResidualLoss:      res.ResidualLoss,
	}
	for _, g := range res.GiveUps {
		out.GiveUps = append(out.GiveUps, GiveUp{
			Src: g.Src, Dst: g.Dst, Attempts: g.Attempts,
			Cycle: g.Cycle, Reason: g.Reason.String(),
		})
	}
	for _, fr := range res.FaultLog {
		out.FaultEvents = append(out.FaultEvents, FaultEvent{
			Cycle:             fr.Event.Cycle,
			Fault:             publicFault(fr.Event.Fault),
			PreRate:           fr.Degradation.PreRate,
			FloorRate:         fr.Degradation.FloorRate,
			PostRate:          fr.Degradation.PostRate,
			PreGoodput:        fr.Degradation.PreGoodput,
			FloorGoodput:      fr.Degradation.FloorGoodput,
			PostGoodput:       fr.Degradation.PostGoodput,
			RecoveryCycles:    fr.Degradation.RecoveryCycles,
			Recovered:         fr.Degradation.Recovered,
			DroppedUnroutable: fr.Drops.Unroutable,
			DroppedInFlight:   fr.Drops.InFlight,
			DroppedDeadNode:   fr.Drops.DeadDrain,
		})
	}
	if res.Watchdog != nil {
		out.Watchdog = res.Watchdog.String()
	}
	out.Telemetry = convertTelemetry(cfg, res.Telemetry)
	return out
}

// Interval is a mean with a 95% confidence half-width.
type Interval struct {
	Mean     float64
	HalfCI95 float64
}

// String renders "mean ± ci".
func (iv Interval) String() string { return fmt.Sprintf("%.3f ± %.3f", iv.Mean, iv.HalfCI95) }

// Replication summarizes repeated runs of one configuration under
// different seeds.
type Replication struct {
	Runs       int
	AvgLatency Interval
	Energy     Interval
	Completion Interval
	Throughput Interval
	PEF        Interval
}

// Replicate runs cfg n times with seeds cfg.Seed, cfg.Seed+1, ... and
// returns means with 95% confidence intervals — the replication method the
// shipped EXPERIMENTS.md numbers use to show run-to-run spread.
func Replicate(cfg Config, n int) Replication {
	if n < 1 {
		panic("roco: Replicate needs at least one run")
	}
	lat := make([]float64, n)
	en := make([]float64, n)
	comp := make([]float64, n)
	thr := make([]float64, n)
	pef := make([]float64, n)
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		r := Run(c)
		lat[i], en[i], comp[i], thr[i], pef[i] =
			r.AvgLatency, r.EnergyPerPacketNJ, r.Completion, r.Throughput, r.PEF
	}
	return Replication{
		Runs:       n,
		AvgLatency: interval(lat),
		Energy:     interval(en),
		Completion: interval(comp),
		Throughput: interval(thr),
		PEF:        interval(pef),
	}
}

// interval computes a mean and normal-approximation 95% CI half-width.
func interval(xs []float64) Interval {
	n := float64(len(xs))
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / n
	if len(xs) < 2 {
		return Interval{Mean: mean}
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	sd := math.Sqrt(ss / (n - 1))
	return Interval{Mean: mean, HalfCI95: 1.96 * sd / math.Sqrt(n)}
}

// WindowPoint is one fixed-width time window's delivery statistics from
// RunWindowed.
type WindowPoint struct {
	StartCycle int64
	Delivered  int64
	AvgLatency float64
	// Dropped counts flits discarded in the window (fault recovery).
	Dropped int64
}

// RunWindowed executes one simulation while recording a time series of
// per-window delivery counts and latencies (window width in cycles) — the
// view that makes warm-up convergence and traffic burstiness visible.
func RunWindowed(cfg Config, windowCycles int64) (Result, []WindowPoint) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("roco: invalid config: %v", err))
	}
	net, profile := buildNetwork(cfg, 0)
	res, pts := net.RunWindows(windowCycles)
	out := make([]WindowPoint, len(pts))
	for i, p := range pts {
		out[i] = WindowPoint{StartCycle: p.StartCycle, Delivered: p.Delivered, AvgLatency: p.AvgLatency, Dropped: p.Dropped}
	}
	return summarize(cfg, res, profile), out
}
