// Text round-tripping for the public enumerations, so dynamically built
// configurations — rocoserve job submissions above all — read and write
// as self-describing JSON ("router": "roco", not "Router": 2). Each enum
// implements encoding.TextMarshaler/TextUnmarshaler with a canonical
// lowercase token and accepts the same aliases the rocosim flags do.
package roco

import "fmt"

// enumTokens maps each enum value to its canonical token (first) and
// accepted aliases. Unmarshaling is case-insensitive.
var (
	routerTokens = map[RouterKind][]string{
		Generic:       {"generic", "gen"},
		PathSensitive: {"pathsensitive", "path-sensitive", "ps"},
		RoCo:          {"roco"},
		PDR:           {"pdr"},
	}
	algorithmTokens = map[Algorithm][]string{
		XY:       {"xy", "dor"},
		XYYX:     {"xyyx", "xy-yx"},
		Adaptive: {"adaptive", "oddeven", "odd-even"},
	}
	trafficTokens = map[TrafficPattern][]string{
		Uniform:       {"uniform"},
		Transpose:     {"transpose"},
		SelfSimilar:   {"selfsimilar", "self-similar", "web"},
		MPEG2:         {"mpeg2", "mpeg", "video"},
		BitComplement: {"bitcomplement", "bit-complement"},
		Hotspot:       {"hotspot"},
	}
	componentTokens = map[Component][]string{
		RC:       {"rc"},
		Buffer:   {"buffer"},
		VA:       {"va"},
		SA:       {"sa"},
		Crossbar: {"crossbar"},
		MuxDemux:     {"muxdemux", "mux/demux", "mux-demux"},
		D2DInterface: {"d2d", "d2dif", "d2d-if", "d2dinterface"},
	}
	d2dClassTokens = map[D2DClass][]string{
		D2DParallel: {"parallel", "par"},
		D2DSerial:   {"serial", "ser"},
	}
	faultClassTokens = map[FaultClass][]string{
		CriticalFaults:    {"critical"},
		NonCriticalFaults: {"noncritical", "non-critical"},
	}
)

// marshalEnum renders the canonical token for v.
func marshalEnum[E comparable](tokens map[E][]string, v E, kind string) ([]byte, error) {
	if names, ok := tokens[v]; ok {
		return []byte(names[0]), nil
	}
	return nil, fmt.Errorf("roco: unknown %s %v", kind, v)
}

// unmarshalEnum parses any accepted token for the enum, case-insensitively.
func unmarshalEnum[E comparable](tokens map[E][]string, text []byte, kind string) (E, error) {
	s := lower(string(text))
	for v, names := range tokens {
		for _, name := range names {
			if s == name {
				return v, nil
			}
		}
	}
	var zero E
	return zero, fmt.Errorf("roco: unknown %s %q", kind, string(text))
}

// lower is strings.ToLower restricted to ASCII (enum tokens are ASCII).
func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

// MarshalText renders the canonical token ("generic", "pathsensitive",
// "roco", "pdr").
func (k RouterKind) MarshalText() ([]byte, error) { return marshalEnum(routerTokens, k, "router kind") }

// UnmarshalText parses a router-kind token (aliases "gen",
// "path-sensitive" and "ps" accepted, case-insensitive).
func (k *RouterKind) UnmarshalText(text []byte) error {
	v, err := unmarshalEnum(routerTokens, text, "router kind")
	if err == nil {
		*k = v
	}
	return err
}

// MarshalText renders the canonical token ("xy", "xyyx", "adaptive").
func (a Algorithm) MarshalText() ([]byte, error) { return marshalEnum(algorithmTokens, a, "algorithm") }

// UnmarshalText parses an algorithm token (aliases "dor", "xy-yx",
// "oddeven", "odd-even" accepted, case-insensitive).
func (a *Algorithm) UnmarshalText(text []byte) error {
	v, err := unmarshalEnum(algorithmTokens, text, "algorithm")
	if err == nil {
		*a = v
	}
	return err
}

// MarshalText renders the canonical token ("uniform", "transpose",
// "selfsimilar", "mpeg2", "bitcomplement", "hotspot").
func (p TrafficPattern) MarshalText() ([]byte, error) {
	return marshalEnum(trafficTokens, p, "traffic pattern")
}

// UnmarshalText parses a traffic-pattern token (aliases "self-similar",
// "web", "mpeg", "video", "bit-complement" accepted, case-insensitive).
func (p *TrafficPattern) UnmarshalText(text []byte) error {
	v, err := unmarshalEnum(trafficTokens, text, "traffic pattern")
	if err == nil {
		*p = v
	}
	return err
}

// MarshalText renders the canonical token ("rc", "buffer", "va", "sa",
// "crossbar", "muxdemux", "d2d").
func (c Component) MarshalText() ([]byte, error) { return marshalEnum(componentTokens, c, "component") }

// UnmarshalText parses a component token (aliases "mux/demux" and
// "mux-demux" accepted, case-insensitive).
func (c *Component) UnmarshalText(text []byte) error {
	v, err := unmarshalEnum(componentTokens, text, "component")
	if err == nil {
		*c = v
	}
	return err
}

// MarshalText renders the canonical token ("parallel", "serial").
func (c D2DClass) MarshalText() ([]byte, error) {
	return marshalEnum(d2dClassTokens, c, "d2d class")
}

// UnmarshalText parses a die-to-die class token (aliases "par" and "ser"
// accepted, case-insensitive).
func (c *D2DClass) UnmarshalText(text []byte) error {
	v, err := unmarshalEnum(d2dClassTokens, text, "d2d class")
	if err == nil {
		*c = v
	}
	return err
}

// MarshalText renders the canonical token ("critical", "noncritical").
func (c FaultClass) MarshalText() ([]byte, error) {
	return marshalEnum(faultClassTokens, c, "fault class")
}

// UnmarshalText parses a fault-class token (alias "non-critical"
// accepted, case-insensitive).
func (c *FaultClass) UnmarshalText(text []byte) error {
	v, err := unmarshalEnum(faultClassTokens, text, "fault class")
	if err == nil {
		*c = v
	}
	return err
}
