package roco

import (
	"reflect"
	"strings"
	"testing"
)

// multichipConfig is a small chiplet run: a 2x2 grid of 4x4-node chips
// (the flat 8x8 mesh re-tiled) with serialized boundary links.
func multichipConfig(k RouterKind, alg Algorithm, rate float64) Config {
	cfg := quickConfig(k, alg, Uniform, rate)
	cfg.ChipsX, cfg.ChipsY, cfg.ChipW, cfg.ChipH = 2, 2, 4, 4
	cfg.D2DClass = D2DSerial
	return cfg
}

// TestMultichipOneChipEqualsFlat pins the degeneracy contract: a
// 1x1-chiplet multichip topology IS the flat topology, bit for bit —
// including with non-trivial D2D timing configured (there are no
// boundary links to apply it to).
func TestMultichipOneChipEqualsFlat(t *testing.T) {
	flat := Run(quickConfig(RoCo, Adaptive, Uniform, 0.2))
	cfg := quickConfig(RoCo, Adaptive, Uniform, 0.2)
	cfg.ChipsX, cfg.ChipsY, cfg.ChipW, cfg.ChipH = 1, 1, 8, 8
	cfg.D2DClass = D2DSerial
	if got := Run(cfg); !reflect.DeepEqual(got, flat) {
		t.Fatalf("1x1-chiplet mesh diverged from the flat mesh\n got: %v\nwant: %v", got, flat)
	}

	flatTorus := Run(torusConfig(0.15))
	tcfg := torusConfig(0.15)
	tcfg.ChipsX, tcfg.ChipsY, tcfg.ChipW, tcfg.ChipH = 1, 1, 8, 8
	tcfg.D2DClass = D2DSerial
	if got := Run(tcfg); !reflect.DeepEqual(got, flatTorus) {
		t.Fatalf("1x1-chiplet torus diverged from the flat torus\n got: %v\nwant: %v", got, flatTorus)
	}
}

// TestMultichipKernelIdentity: all four kernels produce bit-identical
// results on a chiplet topology with multi-cycle serialized boundary
// links and a runtime die-to-die interface fault under Reliable.
func TestMultichipKernelIdentity(t *testing.T) {
	base := multichipConfig(RoCo, XY, 0.2)
	base.Reliable = true
	base.AuditEvery = 32
	base.FaultSchedule = []TimedFault{
		{Cycle: 1500, Fault: Fault{Node: 0, Component: D2DInterface, Side: SideEast}},
	}

	ref := base
	ref.ReferenceKernel = true
	want := Run(ref)
	if want.D2DFlits == 0 {
		t.Fatal("no flits crossed the boundary links; test is vacuous")
	}
	if len(want.FaultEvents) != 1 {
		t.Fatalf("expected one fault event, got %d", len(want.FaultEvents))
	}

	variants := map[string]func(*Config){
		"gated":       func(*Config) {},
		"soa":         func(c *Config) { c.SoAKernel = true },
		"sharded":     func(c *Config) { c.Shards = 4 },
		"soa-sharded": func(c *Config) { c.SoAKernel = true; c.Shards = 3 },
	}
	for name, tweak := range variants {
		cfg := base
		tweak(&cfg)
		if got := Run(cfg); !reflect.DeepEqual(got, want) {
			t.Errorf("%s kernel diverged from reference on multichip\n got: %v\nwant: %v", name, got, want)
		}
	}
}

// TestMultichipD2DEnergyPremium: boundary crossings cost extra energy,
// serial lanes more than parallel, and the premium is exactly the flit
// count times the per-flit difference (already folded into DynamicNJ).
func TestMultichipD2DEnergyPremium(t *testing.T) {
	par := multichipConfig(RoCo, XY, 0.2)
	par.D2DClass = D2DParallel
	ser := multichipConfig(RoCo, XY, 0.2)

	rp, rs := Run(par), Run(ser)
	if rp.D2DFlits == 0 || rs.D2DFlits == 0 {
		t.Fatal("no boundary traffic measured")
	}
	if rp.D2DEnergyNJ <= 0 || rs.D2DEnergyNJ <= 0 {
		t.Fatalf("D2D premium not accounted: parallel %v, serial %v", rp.D2DEnergyNJ, rs.D2DEnergyNJ)
	}
	// Same traffic per flit, serial lane strictly pricier.
	if rs.D2DEnergyNJ/float64(rs.D2DFlits) <= rp.D2DEnergyNJ/float64(rp.D2DFlits) {
		t.Errorf("serial per-flit premium %v should exceed parallel %v",
			rs.D2DEnergyNJ/float64(rs.D2DFlits), rp.D2DEnergyNJ/float64(rp.D2DFlits))
	}
	// The flat mesh has no boundary links and no premium.
	if flat := Run(quickConfig(RoCo, XY, Uniform, 0.2)); flat.D2DFlits != 0 || flat.D2DEnergyNJ != 0 {
		t.Errorf("flat mesh reports D2D activity: %d flits, %v nJ", flat.D2DFlits, flat.D2DEnergyNJ)
	}
}

// TestD2DInterfaceFaultExactGiveUps: under Reliable with XY routing, a
// severed boundary interface makes exactly the flows whose deterministic
// route crosses the cut unreachable — every give-up is one of them, is
// reasoned "unreachable", and the residual loss matches.
func TestD2DInterfaceFaultExactGiveUps(t *testing.T) {
	cfg := multichipConfig(RoCo, XY, 0.2)
	cfg.Reliable = true
	cfg.FaultSchedule = []TimedFault{
		// Chip (0,0)'s east interface: the links between columns 3 and 4 on
		// rows 0..3, both directions.
		{Cycle: 1000, Fault: Fault{Node: 0, Component: D2DInterface, Side: SideEast}},
	}
	res := Run(cfg)
	if len(res.GiveUps) == 0 {
		t.Fatal("no give-ups recorded; fault installed too late or not at all")
	}
	crossesCut := func(src, dst int) bool {
		sx, sy := src%8, src/8
		dx := dst % 8
		// XY routing traverses the X dimension along the source row first;
		// the severed column-3/4 crossings are on rows 0..3.
		return sy <= 3 && ((sx <= 3 && dx >= 4) || (sx >= 4 && dx <= 3))
	}
	for _, g := range res.GiveUps {
		if g.Reason != "unreachable" {
			t.Errorf("give-up %d->%d reasoned %q, want unreachable", g.Src, g.Dst, g.Reason)
		}
		if !crossesCut(g.Src, g.Dst) {
			t.Errorf("give-up %d->%d does not cross the severed interface", g.Src, g.Dst)
		}
	}
	if res.ResidualLoss != int64(len(res.GiveUps)) {
		t.Errorf("residual loss %d != %d give-ups (drained run)", res.ResidualLoss, len(res.GiveUps))
	}
	if len(res.FaultEvents) != 1 {
		t.Fatalf("expected one fault event, got %d", len(res.FaultEvents))
	}
	if ev := res.FaultEvents[0]; ev.FloorGoodput <= 0 {
		t.Errorf("post-fault goodput floor %v; expected graceful degradation, not collapse", ev.FloorGoodput)
	}
}

// TestMultichipStaticInterfaceFault: a statically severed interface is
// live from cycle 0 — unroutable flows are given up, the rest deliver.
func TestMultichipStaticInterfaceFault(t *testing.T) {
	cfg := multichipConfig(RoCo, XY, 0.15)
	cfg.Reliable = true
	cfg.Faults = []Fault{{Node: 12, Component: D2DInterface, Side: SideNorth}}
	res := Run(cfg)
	if res.DeliveredPackets == 0 {
		t.Fatal("nothing delivered around a single severed interface")
	}
	for _, g := range res.GiveUps {
		if g.Reason != "unreachable" {
			t.Errorf("give-up %d->%d reasoned %q, want unreachable", g.Src, g.Dst, g.Reason)
		}
	}
	if res.Completion+float64(len(res.GiveUps))/float64(res.GeneratedPackets) < 0.999 {
		t.Errorf("packets neither delivered nor given up: completion %v, %d give-ups",
			res.Completion, len(res.GiveUps))
	}
}

// TestMultichipSnapshotRoundTrip: checkpoints on a chiplet topology with
// in-flight boundary traffic are kernel-canonical — a run snapshotted
// periodically matches the straight run, and a snapshot taken under one
// kernel resumes bit-identically under the others.
func TestMultichipSnapshotRoundTrip(t *testing.T) {
	cfg := multichipConfig(RoCo, XY, 0.2)
	cfg.Reliable = true
	cfg.TelemetryEvery = 64
	cfg.AuditEvery = 64
	cfg.FaultSchedule = []TimedFault{
		{Cycle: 600, Fault: Fault{Node: 0, Component: D2DInterface, Side: SideSouth}},
	}
	// Node 0 has no south interface -- chip (0,0) is on the global edge.
	if err := cfg.Validate(); err == nil {
		t.Fatal("edge interface fault passed validation")
	}
	cfg.FaultSchedule[0].Fault.Side = SideNorth
	want := Run(cfg)

	dir := t.TempDir()
	got, interrupted, err := NewSim(cfg).RunCheckpointed(CheckpointOptions{Every: 40, Dir: dir})
	if err != nil {
		t.Fatalf("RunCheckpointed: %v", err)
	}
	if interrupted {
		t.Fatal("unexpected interruption")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("periodic snapshots perturbed the multichip run\n got: %v\nwant: %v", got, want)
	}

	// Resume the latest snapshot under each other kernel.
	for _, variant := range []struct {
		name  string
		tweak func(*Config)
	}{
		{"reference", func(c *Config) { c.ReferenceKernel = true }},
		{"soa", func(c *Config) { c.SoAKernel = true }},
		{"sharded", func(c *Config) { c.Shards = 4 }},
	} {
		rcfg := cfg
		variant.tweak(&rcfg)
		sim, err := ResumeLatest(dir, rcfg)
		if err != nil {
			t.Fatalf("%s resume: %v", variant.name, err)
		}
		if res := sim.Run(); !reflect.DeepEqual(res, want) {
			t.Errorf("%s kernel resume diverged on multichip\n got: %v\nwant: %v", variant.name, res, want)
		}
	}
}

// TestMultichipBigGridKernels is the scale contract: a >=4096-node
// multichip topology runs under every kernel bit-identically, with a
// cross-kernel resumable checkpoint.
func TestMultichipBigGridKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("4096-node grid in -short mode")
	}
	cfg := Config{
		Router: RoCo, Algorithm: XY, Traffic: Uniform,
		ChipsX: 4, ChipsY: 4, ChipW: 16, ChipH: 16, // 64x64 = 4096 nodes
		D2DClass:      D2DParallel,
		InjectionRate: 0.05,
		WarmupPackets: 200, MeasurePackets: 3000,
		Seed: 11,
	}
	ref := cfg
	ref.ReferenceKernel = true
	want := Run(ref)
	if want.D2DFlits == 0 {
		t.Fatal("no boundary traffic on the big grid")
	}

	soa := cfg
	soa.SoAKernel = true
	soa.Shards = 8
	if got := Run(soa); !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded SoA kernel diverged on the 4096-node grid\n got: %v\nwant: %v", got, want)
	}

	// Checkpoint under the gated kernel, resume under sharded SoA.
	dir := t.TempDir()
	if _, _, err := NewSim(cfg).RunCheckpointed(CheckpointOptions{Every: 150, Dir: dir}); err != nil {
		t.Fatalf("RunCheckpointed: %v", err)
	}
	sim, err := ResumeLatest(dir, soa)
	if err != nil {
		t.Fatalf("ResumeLatest: %v", err)
	}
	if res := sim.Run(); !reflect.DeepEqual(res, want) {
		t.Fatalf("cross-kernel resume diverged on the 4096-node grid\n got: %v\nwant: %v", res, want)
	}
}

// TestMultichipValidation exercises the new Validate rules.
func TestMultichipValidation(t *testing.T) {
	ok := multichipConfig(RoCo, XY, 0.1)
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid multichip config rejected: %v", err)
	}
	bad := []struct {
		name  string
		tweak func(*Config)
	}{
		{"partial grid", func(c *Config) { c.ChipH = 0 }},
		{"mismatched dims", func(c *Config) { c.Width, c.Height = 9, 9 }},
		{"negative d2d timing", func(c *Config) { c.D2DLatency = -1 }},
		{"unknown d2d class", func(c *Config) { c.D2DClass = 7 }},
		{"d2d fault off-grid side", func(c *Config) {
			c.Faults = []Fault{{Node: 0, Component: D2DInterface, Side: SideWest}}
		}},
		{"d2d fault bad side", func(c *Config) {
			c.Faults = []Fault{{Node: 0, Component: D2DInterface, Side: 9}}
		}},
	}
	for _, tc := range bad {
		cfg := multichipConfig(RoCo, XY, 0.1)
		tc.tweak(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: config accepted", tc.name)
		}
	}
	// D2D knobs without a chiplet grid.
	flat := quickConfig(RoCo, XY, Uniform, 0.1)
	flat.D2DGap = 4
	if err := flat.Validate(); err == nil || !strings.Contains(err.Error(), "chiplet") {
		t.Errorf("flat config with D2D knobs accepted (err %v)", err)
	}
	// D2D fault on a flat mesh.
	flat = quickConfig(RoCo, XY, Uniform, 0.1)
	flat.Faults = []Fault{{Node: 0, Component: D2DInterface, Side: SideEast}}
	if err := flat.Validate(); err == nil {
		t.Error("flat config with a D2DInterface fault accepted")
	}
}

// TestMultichipHeatmapSeparators: the spatial views rebuild the chiplet
// topology and draw die boundaries.
func TestMultichipHeatmapSeparators(t *testing.T) {
	cfg := multichipConfig(RoCo, XY, 0.15)
	cfg.WarmupPackets, cfg.MeasurePackets = 200, 1500
	d := RunDetailed(cfg)
	if d.ChipsX != 2 || d.ChipW != 4 {
		t.Fatalf("Detailed lost the chiplet grid: %+v", d)
	}
	util := d.LinkUtilization()
	if len(util) != 64 {
		t.Fatalf("utilization over %d nodes, want 64", len(util))
	}
	var sb strings.Builder
	d.RenderHeatmap(&sb)
	out := sb.String()
	if !strings.Contains(out, "2x2 chiplets of 4x4") {
		t.Errorf("heatmap title lacks the chiplet shape:\n%s", out)
	}
	if !strings.Contains(out, "|") {
		t.Errorf("heatmap lacks die-boundary separators:\n%s", out)
	}
}

// TestD2DInterfaceFaultClaimPurge pins the severed-interface claim purge
// across several seeds. When the fault strikes with a head flit still in
// flight across the boundary, the head is dropped at the dead interface
// but the claim it held on a downstream channel would — without the purge
// — never be released: the latched feeder makes the channel permanently
// unclaimable, and every turn class mapped to it (both TurnXY channels,
// under XY) wedges the seam-adjacent column forever. Seed 1 reproduces
// the wedge without the purge; the run must instead drain with closed
// accounting (every generated packet delivered or given up).
func TestD2DInterfaceFaultClaimPurge(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		cfg := multichipConfig(RoCo, XY, 0.2)
		cfg.Reliable = true
		cfg.Seed = seed
		cfg.FaultSchedule = []TimedFault{
			{Cycle: 1000, Fault: Fault{Node: 0, Component: D2DInterface, Side: SideEast}},
		}
		res := Run(cfg)
		if res.ResidualLoss != int64(len(res.GiveUps)) {
			t.Errorf("seed %d: residual loss %d != %d give-ups (leaked state)",
				seed, res.ResidualLoss, len(res.GiveUps))
		}
		if got := res.Completion + float64(len(res.GiveUps))/float64(res.GeneratedPackets); got < 0.999 {
			t.Errorf("seed %d: packets neither delivered nor given up: completion %v, %d give-ups",
				seed, res.Completion, len(res.GiveUps))
		}
	}
}
