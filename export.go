package roco

import (
	"encoding/json"
	"io"
)

// routerMapToJSON converts RouterKind-keyed maps into name-keyed maps so
// the experiment results serialize into self-describing JSON.
func routerMapToJSON[T any](m map[RouterKind]T) map[string]T {
	out := make(map[string]T, len(m))
	for k, v := range m {
		out[k.String()] = v
	}
	return out
}

// MarshalJSON serializes the sweep with router names as keys.
func (s LatencySweep) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Traffic   string               `json:"traffic"`
		Algorithm string               `json:"algorithm"`
		Rates     []float64            `json:"rates"`
		Latency   map[string][]float64 `json:"latency"`
		Saturated map[string][]bool    `json:"saturated"`
	}{
		Traffic:   s.Traffic.String(),
		Algorithm: s.Algorithm.String(),
		Rates:     s.Rates,
		Latency:   routerMapToJSON(s.Latency),
		Saturated: routerMapToJSON(s.Saturated),
	})
}

// MarshalJSON serializes the contention panel with router names as keys.
func (s ContentionSweep) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Algorithm string               `json:"algorithm"`
		Dimension string               `json:"dimension"`
		Rates     []float64            `json:"rates"`
		Prob      map[string][]float64 `json:"contention"`
	}{
		Algorithm: s.Algorithm.String(),
		Dimension: s.Dimension,
		Rates:     s.Rates,
		Prob:      routerMapToJSON(s.Prob),
	})
}

// MarshalJSON serializes the fault panel with router names as keys.
func (e FaultExperiment) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Class      string               `json:"faultClass"`
		Algorithm  string               `json:"algorithm"`
		Counts     []int                `json:"faultCounts"`
		Completion map[string][]float64 `json:"completion"`
		Latency    map[string][]float64 `json:"latency"`
		PEF        map[string][]float64 `json:"pef"`
	}{
		Class:      e.Class.String(),
		Algorithm:  e.Algorithm.String(),
		Counts:     e.Counts,
		Completion: routerMapToJSON(e.Completion),
		Latency:    routerMapToJSON(e.Latency),
		PEF:        routerMapToJSON(e.PEF),
	})
}

// MarshalJSON serializes the energy comparison with router names as keys.
func (e EnergyResult) MarshalJSON() ([]byte, error) {
	patterns := make([]string, len(e.Patterns))
	for i, p := range e.Patterns {
		patterns[i] = p.String()
	}
	return json.Marshal(struct {
		Patterns []string             `json:"patterns"`
		EnergyNJ map[string][]float64 `json:"energyPerPacketNJ"`
	}{
		Patterns: patterns,
		EnergyNJ: routerMapToJSON(e.EnergyNJ),
	})
}

// WriteJSON serializes any experiment result (or a map of them) to w with
// indentation, for downstream plotting tools.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
