// Enum text round-tripping: every value marshals to its canonical token
// and unmarshals back, aliases and case-insensitivity work, unknown
// tokens error, and a whole Config survives a JSON round trip with
// readable enum tokens in the wire form.
package roco

import (
	"encoding"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestEnumTextRoundTrip(t *testing.T) {
	check := func(name string, v interface {
		encoding.TextMarshaler
	}, fresh func() encoding.TextUnmarshaler, get func(encoding.TextUnmarshaler) any) {
		t.Helper()
		text, err := v.MarshalText()
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		u := fresh()
		if err := u.UnmarshalText(text); err != nil {
			t.Fatalf("%s: unmarshal %q: %v", name, text, err)
		}
		if got := get(u); got != any(v) {
			t.Fatalf("%s: %q round-tripped to %v, want %v", name, text, got, v)
		}
	}
	for _, k := range AllRouterKinds {
		check(k.String(), k,
			func() encoding.TextUnmarshaler { return new(RouterKind) },
			func(u encoding.TextUnmarshaler) any { return *u.(*RouterKind) })
	}
	for _, a := range Algorithms {
		check(a.String(), a,
			func() encoding.TextUnmarshaler { return new(Algorithm) },
			func(u encoding.TextUnmarshaler) any { return *u.(*Algorithm) })
	}
	for _, p := range []TrafficPattern{Uniform, Transpose, SelfSimilar, MPEG2, BitComplement, Hotspot} {
		check(p.String(), p,
			func() encoding.TextUnmarshaler { return new(TrafficPattern) },
			func(u encoding.TextUnmarshaler) any { return *u.(*TrafficPattern) })
	}
	for _, c := range []Component{RC, Buffer, VA, SA, Crossbar, MuxDemux} {
		check(c.String(), c,
			func() encoding.TextUnmarshaler { return new(Component) },
			func(u encoding.TextUnmarshaler) any { return *u.(*Component) })
	}
	for _, c := range []FaultClass{CriticalFaults, NonCriticalFaults} {
		check("faultclass", c,
			func() encoding.TextUnmarshaler { return new(FaultClass) },
			func(u encoding.TextUnmarshaler) any { return *u.(*FaultClass) })
	}
}

func TestEnumAliasesAndCase(t *testing.T) {
	var k RouterKind
	for _, tok := range []string{"ps", "path-sensitive", "PathSensitive", "PS"} {
		if err := k.UnmarshalText([]byte(tok)); err != nil || k != PathSensitive {
			t.Errorf("%q: got %v err %v, want PathSensitive", tok, k, err)
		}
	}
	var a Algorithm
	for _, tok := range []string{"dor", "odd-even", "OddEven", "XY-YX"} {
		if err := a.UnmarshalText([]byte(tok)); err != nil {
			t.Errorf("%q: %v", tok, err)
		}
	}
	var p TrafficPattern
	for _, tok := range []string{"web", "video", "bit-complement", "Self-Similar"} {
		if err := p.UnmarshalText([]byte(tok)); err != nil {
			t.Errorf("%q: %v", tok, err)
		}
	}
	var c Component
	for _, tok := range []string{"mux/demux", "mux-demux", "MuxDemux"} {
		if err := c.UnmarshalText([]byte(tok)); err != nil || c != MuxDemux {
			t.Errorf("%q: got %v err %v, want MuxDemux", tok, c, err)
		}
	}
	var fc FaultClass
	if err := fc.UnmarshalText([]byte("non-critical")); err != nil || fc != NonCriticalFaults {
		t.Errorf("non-critical: got %v err %v", fc, err)
	}
}

func TestEnumUnknownTokens(t *testing.T) {
	var k RouterKind
	if err := k.UnmarshalText([]byte("warp-drive")); err == nil {
		t.Error("unknown router token accepted")
	}
	var a Algorithm
	if err := a.UnmarshalText([]byte("")); err == nil {
		t.Error("empty algorithm token accepted")
	}
	var p TrafficPattern
	if err := p.UnmarshalText([]byte("tornado")); err == nil {
		t.Error("unknown traffic token accepted")
	}
}

// TestConfigJSONRoundTrip: a Config with enums, faults and a schedule
// marshals with readable tokens and unmarshals back to an equal value.
func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := Config{
		Width: 6, Height: 6,
		Router: RoCo, Algorithm: Adaptive, Traffic: Hotspot,
		InjectionRate: 0.15, HotspotNode: 14, HotspotFraction: 0.3,
		Seed:     42,
		Reliable: true,
		Faults:   []Fault{{Node: 3, Component: Crossbar, Module: 1}},
		FaultSchedule: []TimedFault{
			{Cycle: 500, Fault: Fault{Node: 7, Component: Buffer, VC: 2}},
		},
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range []string{`"roco"`, `"adaptive"`, `"hotspot"`, `"crossbar"`, `"buffer"`} {
		if !strings.Contains(string(data), tok) {
			t.Errorf("wire form missing token %s:\n%s", tok, data)
		}
	}
	var back Config
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg, back) {
		t.Fatalf("round trip changed the config:\n got %+v\nwant %+v", back, cfg)
	}
}
