package roco

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// ckptTestConfig is a small but fully armed run: runtime faults, the
// reliability protocol, telemetry and audits, so snapshots carry every
// state family.
func ckptTestConfig() Config {
	return Config{
		Width: 8, Height: 8,
		Router: RoCo, Algorithm: XY, Traffic: Uniform,
		InjectionRate:   0.2,
		WarmupPackets:   100,
		MeasurePackets:  800,
		Seed:            9,
		Reliable:        true,
		TelemetryEvery:  64,
		AuditEvery:      64,
		InactivityLimit: 1500,
		FaultSchedule:   PoissonFaultSchedule(NonCriticalFaults, 60, 300, 8, 8, 5),
	}
}

// TestRunCheckpointedMatchesRun is the public-API equivalence contract:
// periodic snapshots never perturb a run, and resuming from any of them
// finishes with the identical Result.
func TestRunCheckpointedMatchesRun(t *testing.T) {
	cfg := ckptTestConfig()
	want := Run(cfg)
	if len(want.FaultEvents) == 0 {
		t.Fatal("fault schedule installed no faults; test is vacuous")
	}

	dir := t.TempDir()
	got, interrupted, err := NewSim(cfg).RunCheckpointed(CheckpointOptions{Every: 50, Dir: dir})
	if err != nil {
		t.Fatalf("RunCheckpointed: %v", err)
	}
	if interrupted {
		t.Fatal("RunCheckpointed reported an interruption without a Stop channel")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("periodic snapshots perturbed the run\n got: %v\nwant: %v", got, want)
	}

	names, err := filepath.Glob(filepath.Join(dir, "ckpt-*.rocosnap"))
	if err != nil || len(names) < 2 {
		t.Fatalf("expected several snapshot files, got %v (err %v)", names, err)
	}
	sort.Strings(names)

	// Resume from the earliest snapshot (most of the run left to replay)
	// and from the latest (via ResumeLatest): both must finish identically.
	f, err := os.Open(names[0])
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Resume(f, cfg)
	f.Close()
	if err != nil {
		t.Fatalf("resuming earliest snapshot: %v", err)
	}
	if res := sim.Run(); !reflect.DeepEqual(res, want) {
		t.Fatalf("run resumed from earliest snapshot diverged\n got: %v\nwant: %v", res, want)
	}

	sim, err = ResumeLatest(dir, cfg)
	if err != nil {
		t.Fatalf("ResumeLatest: %v", err)
	}
	if res := sim.Run(); !reflect.DeepEqual(res, want) {
		t.Fatalf("run resumed from latest snapshot diverged\n got: %v\nwant: %v", res, want)
	}
}

// TestRunCheckpointedStopFlushesResumableSnapshot models the signal
// path: a Stop request ends the run early after flushing a snapshot,
// and resuming that snapshot completes the run bit-identically.
func TestRunCheckpointedStopFlushesResumableSnapshot(t *testing.T) {
	cfg := ckptTestConfig()
	want := Run(cfg)

	dir := t.TempDir()
	stop := make(chan struct{})
	close(stop) // stop at the very first cycle boundary
	_, interrupted, err := NewSim(cfg).RunCheckpointed(CheckpointOptions{Dir: dir, Stop: stop})
	if err != nil {
		t.Fatalf("RunCheckpointed: %v", err)
	}
	if !interrupted {
		t.Fatal("Stop channel did not interrupt the run")
	}

	sim, err := ResumeLatest(dir, cfg)
	if err != nil {
		t.Fatalf("ResumeLatest after interrupt: %v", err)
	}
	if res := sim.Run(); !reflect.DeepEqual(res, want) {
		t.Fatalf("run resumed after interrupt diverged\n got: %v\nwant: %v", res, want)
	}
}

// TestSnapshotTruncationEveryByte is the kill-mid-write contract: a
// snapshot cut at every possible byte boundary must surface as a typed
// corruption error — never a panic, never a silently wrong resume.
func TestSnapshotTruncationEveryByte(t *testing.T) {
	cfg := Config{
		Width: 4, Height: 4,
		Router: RoCo, Algorithm: XY, Traffic: Uniform,
		InjectionRate: 0.2,
		WarmupPackets: 10, MeasurePackets: 50,
		Seed: 3,
	}
	var frame bytes.Buffer
	if err := NewSim(cfg).Checkpoint(&frame); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	full := frame.Bytes()

	if _, err := Resume(bytes.NewReader(full), cfg); err != nil {
		t.Fatalf("resuming the untruncated frame: %v", err)
	}
	for k := 0; k < len(full); k++ {
		_, err := Resume(bytes.NewReader(full[:k]), cfg)
		if err == nil {
			t.Fatalf("truncation at byte %d of %d resumed successfully", k, len(full))
		}
		if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("truncation at byte %d: got %v, want ErrCorruptSnapshot", k, err)
		}
	}

	// A flipped payload byte (bit rot, torn sector) must fail the
	// checksum the same way.
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := Resume(bytes.NewReader(flipped), cfg); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("flipped byte: got %v, want ErrCorruptSnapshot", err)
	}
}

// TestResumeLatestFallsBackPastTornSnapshot pins crash recovery: when
// the newest snapshot file is torn (the writer was killed mid-write),
// ResumeLatest must fall back to the previous valid one; when nothing
// valid remains, it must return ErrNoSnapshot.
func TestResumeLatestFallsBackPastTornSnapshot(t *testing.T) {
	cfg := ckptTestConfig()
	want := Run(cfg)

	dir := t.TempDir()
	if _, _, err := NewSim(cfg).RunCheckpointed(CheckpointOptions{Every: 50, Dir: dir}); err != nil {
		t.Fatalf("RunCheckpointed: %v", err)
	}
	names, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.rocosnap"))
	if len(names) < 2 {
		t.Fatalf("need at least two snapshots, got %d", len(names))
	}
	sort.Strings(names)

	// Tear the newest file in half, simulating a kill mid-write that
	// bypassed the atomic-rename protocol (e.g. a torn sector).
	newest := names[len(names)-1]
	info, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(newest, info.Size()/2); err != nil {
		t.Fatal(err)
	}

	sim, err := ResumeLatest(dir, cfg)
	if err != nil {
		t.Fatalf("ResumeLatest with torn newest: %v", err)
	}
	if res := sim.Run(); !reflect.DeepEqual(res, want) {
		t.Fatalf("fallback resume diverged\n got: %v\nwant: %v", res, want)
	}

	// Tear everything: no snapshot left to resume from.
	for _, name := range names {
		if err := os.Truncate(name, 5); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ResumeLatest(dir, cfg); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("all-torn directory: got %v, want ErrNoSnapshot", err)
	}
}

// TestResumeRejectsMismatchedConfig pins the fingerprint gate: any
// semantic config difference refuses the resume up front, while pure
// kernel-selection differences (reference vs gated vs sharded) pass it.
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	cfg := ckptTestConfig()
	var frame bytes.Buffer
	if err := NewSim(cfg).Checkpoint(&frame); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	bad := cfg
	bad.Seed++
	if _, err := Resume(bytes.NewReader(frame.Bytes()), bad); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("different seed: got %v, want ErrConfigMismatch", err)
	}
	bad = cfg
	bad.InjectionRate = 0.3
	if _, err := Resume(bytes.NewReader(frame.Bytes()), bad); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("different rate: got %v, want ErrConfigMismatch", err)
	}

	kernels := cfg
	kernels.ReferenceKernel = true
	if _, err := Resume(bytes.NewReader(frame.Bytes()), kernels); err != nil {
		t.Fatalf("reference-kernel resume of a gated snapshot: %v", err)
	}
	kernels = cfg
	kernels.Shards = 4
	kernels.Workers = 4
	if _, err := Resume(bytes.NewReader(frame.Bytes()), kernels); err != nil {
		t.Fatalf("sharded resume of a gated snapshot: %v", err)
	}
	kernels = cfg
	kernels.SoAKernel = true
	if _, err := Resume(bytes.NewReader(frame.Bytes()), kernels); err != nil {
		t.Fatalf("SoA resume of a gated snapshot: %v", err)
	}
}
