package roco

import (
	"errors"
	"fmt"

	"github.com/rocosim/roco/internal/topology"
)

// Validate checks a configuration for mistakes Run would otherwise turn
// into panics or silently-absurd results. Run calls it internally (after
// applying defaults) and panics on error — simulation configs are almost
// always static — while library users who build configurations dynamically
// can call it directly and handle the error.
func (c Config) Validate() error {
	c = c.withDefaults()
	var errs []error
	if c.Width < 2 || c.Height < 2 {
		errs = append(errs, fmt.Errorf("mesh %dx%d too small (need at least 2x2)", c.Width, c.Height))
	}
	multichipOK := false
	if c.multichip() {
		switch {
		case c.ChipsX < 1 || c.ChipsY < 1 || c.ChipW < 1 || c.ChipH < 1:
			errs = append(errs, fmt.Errorf("chiplet grid needs all of ChipsX, ChipsY, ChipW, ChipH positive (got %dx%d chips of %dx%d)",
				c.ChipsX, c.ChipsY, c.ChipW, c.ChipH))
		case c.Width != c.ChipsX*c.ChipW || c.Height != c.ChipsY*c.ChipH:
			errs = append(errs, fmt.Errorf("grid %dx%d does not match the %dx%d chiplet grid of %dx%d-node chips (leave Width/Height zero to derive them)",
				c.Width, c.Height, c.ChipsX, c.ChipsY, c.ChipW, c.ChipH))
		default:
			multichipOK = true
		}
	} else if c.D2DClass != D2DParallel || c.D2DLatency != 0 || c.D2DGap != 0 {
		errs = append(errs, errors.New("die-to-die knobs (D2DClass/D2DLatency/D2DGap) set without a chiplet grid"))
	}
	if c.D2DClass < D2DParallel || c.D2DClass > D2DSerial {
		errs = append(errs, fmt.Errorf("unknown die-to-die class %d", int(c.D2DClass)))
	}
	if c.D2DLatency < 0 || c.D2DGap < 0 {
		errs = append(errs, fmt.Errorf("die-to-die timing must be non-negative (latency %d, gap %d)", c.D2DLatency, c.D2DGap))
	}
	if c.Router < Generic || c.Router > PDR {
		errs = append(errs, fmt.Errorf("unknown router kind %d", int(c.Router)))
	}
	if c.Algorithm < XY || c.Algorithm > Adaptive {
		errs = append(errs, fmt.Errorf("unknown algorithm %d", int(c.Algorithm)))
	}
	if c.Router == PDR && c.Algorithm != XY {
		errs = append(errs, errors.New("the PDR router supports XY routing only"))
	}
	if c.Torus && (c.Router != Generic || c.Algorithm != XY) {
		errs = append(errs, errors.New("the torus extension supports the generic router with XY routing only"))
	}
	if c.Traffic < Uniform || c.Traffic > Hotspot {
		errs = append(errs, fmt.Errorf("unknown traffic pattern %d", int(c.Traffic)))
	}
	if c.InjectionRate < 0 || c.InjectionRate > 1 {
		errs = append(errs, fmt.Errorf("injection rate %v outside [0,1] flits/node/cycle", c.InjectionRate))
	}
	if c.FlitsPerPacket < 1 || c.FlitsPerPacket > 64 {
		errs = append(errs, fmt.Errorf("flits per packet %d outside [1,64]", c.FlitsPerPacket))
	}
	if c.WarmupPackets < 0 || c.MeasurePackets < 1 {
		errs = append(errs, fmt.Errorf("run length invalid (warmup %d, measure %d)", c.WarmupPackets, c.MeasurePackets))
	}
	if c.Traffic == Hotspot {
		if c.HotspotNode < 0 || c.HotspotNode >= c.Width*c.Height {
			errs = append(errs, fmt.Errorf("hotspot node %d outside the %dx%d mesh", c.HotspotNode, c.Width, c.Height))
		}
		if c.HotspotFraction < 0 || c.HotspotFraction > 1 {
			errs = append(errs, fmt.Errorf("hotspot fraction %v outside [0,1]", c.HotspotFraction))
		}
	}
	// D2DInterface faults are checked against the actual chiplet geometry:
	// the named node's chiplet must have an interface on the named side.
	var chip topology.Chiplet
	if multichipOK && c.Width >= 2 && c.Height >= 2 {
		if c.Torus {
			chip = topology.NewMultiChipTorus(c.ChipsX, c.ChipsY, c.ChipW, c.ChipH)
		} else {
			chip = topology.NewMultiChipMesh(c.ChipsX, c.ChipsY, c.ChipW, c.ChipH)
		}
	}
	checkFault := func(what string, i int, f Fault) {
		nodeOK := f.Node >= 0 && f.Node < c.Width*c.Height
		if !nodeOK {
			errs = append(errs, fmt.Errorf("%s %d at nonexistent node %d", what, i, f.Node))
		}
		if f.Component < RC || f.Component > D2DInterface {
			errs = append(errs, fmt.Errorf("%s %d has unknown component %d", what, i, int(f.Component)))
		}
		if f.Component != D2DInterface {
			return
		}
		switch {
		case chip == nil:
			errs = append(errs, fmt.Errorf("%s %d: a D2DInterface fault needs a chiplet topology (set ChipsX et al.)", what, i))
		case f.Side < SideNorth || f.Side > SideWest:
			errs = append(errs, fmt.Errorf("%s %d has unknown side %d", what, i, int(f.Side)))
		case nodeOK && len(chip.InterfaceNodes(chip.ChipOf(f.Node), topology.Direction(f.Side))) == 0:
			errs = append(errs, fmt.Errorf("%s %d: node %d's chiplet has no die-to-die interface toward %s", what, i, f.Node, f.Side))
		}
	}
	for i, f := range c.Faults {
		checkFault("fault", i, f)
	}
	for i, tf := range c.FaultSchedule {
		if tf.Cycle < 0 {
			errs = append(errs, fmt.Errorf("scheduled fault %d at negative cycle %d", i, tf.Cycle))
		}
		checkFault("scheduled fault", i, tf.Fault)
	}
	if c.AuditEvery < 0 {
		errs = append(errs, fmt.Errorf("audit interval %d negative", c.AuditEvery))
	}
	if c.Shards < 0 {
		errs = append(errs, fmt.Errorf("shard count %d negative", c.Shards))
	}
	if c.Workers < 0 {
		errs = append(errs, fmt.Errorf("worker count %d negative", c.Workers))
	}
	if c.RetransmitTimeout < 0 || c.RetransmitMaxTimeout < 0 || c.RetransmitMaxRetries < 0 {
		errs = append(errs, fmt.Errorf("retransmission knobs must be non-negative (timeout %d, max timeout %d, max retries %d)",
			c.RetransmitTimeout, c.RetransmitMaxTimeout, c.RetransmitMaxRetries))
	}
	if !c.Reliable && (c.RetransmitTimeout != 0 || c.RetransmitMaxTimeout != 0 || c.RetransmitMaxRetries != 0) {
		errs = append(errs, errors.New("retransmission knobs set without Reliable"))
	}
	return errors.Join(errs...)
}
