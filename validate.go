package roco

import (
	"errors"
	"fmt"
)

// Validate checks a configuration for mistakes Run would otherwise turn
// into panics or silently-absurd results. Run calls it internally (after
// applying defaults) and panics on error — simulation configs are almost
// always static — while library users who build configurations dynamically
// can call it directly and handle the error.
func (c Config) Validate() error {
	c = c.withDefaults()
	var errs []error
	if c.Width < 2 || c.Height < 2 {
		errs = append(errs, fmt.Errorf("mesh %dx%d too small (need at least 2x2)", c.Width, c.Height))
	}
	if c.Router < Generic || c.Router > PDR {
		errs = append(errs, fmt.Errorf("unknown router kind %d", int(c.Router)))
	}
	if c.Algorithm < XY || c.Algorithm > Adaptive {
		errs = append(errs, fmt.Errorf("unknown algorithm %d", int(c.Algorithm)))
	}
	if c.Router == PDR && c.Algorithm != XY {
		errs = append(errs, errors.New("the PDR router supports XY routing only"))
	}
	if c.Torus && (c.Router != Generic || c.Algorithm != XY) {
		errs = append(errs, errors.New("the torus extension supports the generic router with XY routing only"))
	}
	if c.Traffic < Uniform || c.Traffic > Hotspot {
		errs = append(errs, fmt.Errorf("unknown traffic pattern %d", int(c.Traffic)))
	}
	if c.InjectionRate < 0 || c.InjectionRate > 1 {
		errs = append(errs, fmt.Errorf("injection rate %v outside [0,1] flits/node/cycle", c.InjectionRate))
	}
	if c.FlitsPerPacket < 1 || c.FlitsPerPacket > 64 {
		errs = append(errs, fmt.Errorf("flits per packet %d outside [1,64]", c.FlitsPerPacket))
	}
	if c.WarmupPackets < 0 || c.MeasurePackets < 1 {
		errs = append(errs, fmt.Errorf("run length invalid (warmup %d, measure %d)", c.WarmupPackets, c.MeasurePackets))
	}
	if c.Traffic == Hotspot {
		if c.HotspotNode < 0 || c.HotspotNode >= c.Width*c.Height {
			errs = append(errs, fmt.Errorf("hotspot node %d outside the %dx%d mesh", c.HotspotNode, c.Width, c.Height))
		}
		if c.HotspotFraction < 0 || c.HotspotFraction > 1 {
			errs = append(errs, fmt.Errorf("hotspot fraction %v outside [0,1]", c.HotspotFraction))
		}
	}
	for i, f := range c.Faults {
		if f.Node < 0 || f.Node >= c.Width*c.Height {
			errs = append(errs, fmt.Errorf("fault %d at nonexistent node %d", i, f.Node))
		}
		if f.Component < RC || f.Component > MuxDemux {
			errs = append(errs, fmt.Errorf("fault %d has unknown component %d", i, int(f.Component)))
		}
	}
	for i, tf := range c.FaultSchedule {
		if tf.Cycle < 0 {
			errs = append(errs, fmt.Errorf("scheduled fault %d at negative cycle %d", i, tf.Cycle))
		}
		if tf.Fault.Node < 0 || tf.Fault.Node >= c.Width*c.Height {
			errs = append(errs, fmt.Errorf("scheduled fault %d at nonexistent node %d", i, tf.Fault.Node))
		}
		if tf.Fault.Component < RC || tf.Fault.Component > MuxDemux {
			errs = append(errs, fmt.Errorf("scheduled fault %d has unknown component %d", i, int(tf.Fault.Component)))
		}
	}
	if c.AuditEvery < 0 {
		errs = append(errs, fmt.Errorf("audit interval %d negative", c.AuditEvery))
	}
	if c.Shards < 0 {
		errs = append(errs, fmt.Errorf("shard count %d negative", c.Shards))
	}
	if c.Workers < 0 {
		errs = append(errs, fmt.Errorf("worker count %d negative", c.Workers))
	}
	if c.RetransmitTimeout < 0 || c.RetransmitMaxTimeout < 0 || c.RetransmitMaxRetries < 0 {
		errs = append(errs, fmt.Errorf("retransmission knobs must be non-negative (timeout %d, max timeout %d, max retries %d)",
			c.RetransmitTimeout, c.RetransmitMaxTimeout, c.RetransmitMaxRetries))
	}
	if !c.Reliable && (c.RetransmitTimeout != 0 || c.RetransmitMaxTimeout != 0 || c.RetransmitMaxRetries != 0) {
		errs = append(errs, errors.New("retransmission knobs set without Reliable"))
	}
	return errors.Join(errs...)
}
