package roco

import (
	"io"
	"testing"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation at a reduced run length (QuickOptions), reporting wall time
// per regeneration. cmd/rocobench prints the same rows/series at full
// harness scale; EXPERIMENTS.md records the shipped numbers.

func benchOptions() Options {
	o := QuickOptions()
	o.Parallel = true
	return o
}

// BenchmarkTable1VCConfig regenerates the paper's Table 1 (RoCo VC buffer
// configurations per routing algorithm).
func BenchmarkTable1VCConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Table1(io.Discard)
	}
}

// BenchmarkTable2NonBlocking regenerates the paper's Table 2 (non-blocking
// probabilities, analytic recurrence plus Monte-Carlo cross-check).
func BenchmarkTable2NonBlocking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := Table2(100000, uint64(i)+1)
		if res.RoCo != 0.25 {
			b.Fatal("table 2 wrong")
		}
	}
}

// BenchmarkTable3FaultClassification regenerates the paper's Table 3.
func BenchmarkTable3FaultClassification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Table3(io.Discard)
	}
}

// BenchmarkFig3Contention regenerates Figure 3 (contention probabilities
// versus injection rate for the three routers).
func BenchmarkFig3Contention(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		panels := Figure3(opts)
		if len(panels) != 3 {
			b.Fatal("figure 3 should have three panels")
		}
	}
}

// BenchmarkFig8UniformLatency regenerates Figure 8 (latency vs load,
// uniform traffic, three routing algorithms).
func BenchmarkFig8UniformLatency(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if len(Figure8(opts)) != 3 {
			b.Fatal("figure 8 should have three panels")
		}
	}
}

// BenchmarkFig9SelfSimilarLatency regenerates Figure 9 (self-similar web
// traffic).
func BenchmarkFig9SelfSimilarLatency(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if len(Figure9(opts)) != 3 {
			b.Fatal("figure 9 should have three panels")
		}
	}
}

// BenchmarkFig10TransposeLatency regenerates Figure 10 (transpose traffic).
func BenchmarkFig10TransposeLatency(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if len(Figure10(opts)) != 3 {
			b.Fatal("figure 10 should have three panels")
		}
	}
}

// BenchmarkFig11CriticalFaults regenerates Figure 11 (completion under
// router-centric faults).
func BenchmarkFig11CriticalFaults(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if len(Figure11(opts)) != 3 {
			b.Fatal("figure 11 should have three panels")
		}
	}
}

// BenchmarkFig12NonCriticalFaults regenerates Figure 12 (completion under
// message-centric faults).
func BenchmarkFig12NonCriticalFaults(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if len(Figure12(opts)) != 3 {
			b.Fatal("figure 12 should have three panels")
		}
	}
}

// BenchmarkFig13EnergyPerPacket regenerates Figure 13 (energy per packet
// across traffic patterns).
func BenchmarkFig13EnergyPerPacket(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		res := Figure13(opts)
		if len(res.EnergyNJ[RoCo]) != 3 {
			b.Fatal("figure 13 should cover three traffic patterns")
		}
	}
}

// BenchmarkFig14PEF regenerates Figure 14 (PEF under critical and
// non-critical faults).
func BenchmarkFig14PEF(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if len(Figure14(opts)) != 2 {
			b.Fatal("figure 14 should have two panels")
		}
	}
}

// BenchmarkSimulationThroughput measures raw simulator speed (cycles per
// second) for each router kind: one fixed-load 8x8 run per iteration.
func BenchmarkSimulationThroughput(b *testing.B) {
	for _, k := range RouterKinds {
		k := k
		b.Run(k.String(), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				res := Run(Config{
					Router: k, Algorithm: XY, Traffic: Uniform,
					InjectionRate: 0.25,
					WarmupPackets: 200, MeasurePackets: 5000,
					Seed: uint64(i) + 1,
				})
				cycles += res.Cycles
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
		})
	}
}

// --- Ablation benches (design choices DESIGN.md calls out) ---

// BenchmarkAblationEarlyEjection quantifies the latency saved by early
// ejection: RoCo versus the generic router (which pays SA + switch
// traversal at the destination) at near-zero load, where the 2-cycle gap
// is the dominant difference.
func BenchmarkAblationEarlyEjection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gen := Run(Config{Router: Generic, Algorithm: XY, Traffic: Uniform,
			InjectionRate: 0.02, WarmupPackets: 100, MeasurePackets: 2000, Seed: 3})
		rc := Run(Config{Router: RoCo, Algorithm: XY, Traffic: Uniform,
			InjectionRate: 0.02, WarmupPackets: 100, MeasurePackets: 2000, Seed: 3})
		b.ReportMetric(gen.AvgLatency-rc.AvgLatency, "cycles-saved")
	}
}

// BenchmarkAblationVCConfig contrasts the three Table 1 configurations on
// the same workload: the per-algorithm channel assignment is itself a
// design choice (XY's extra dx channels versus adaptive's extra txy).
func BenchmarkAblationVCConfig(b *testing.B) {
	for _, alg := range Algorithms {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := Run(Config{Router: RoCo, Algorithm: alg, Traffic: Uniform,
					InjectionRate: 0.25, WarmupPackets: 200, MeasurePackets: 4000, Seed: 5})
				b.ReportMetric(res.AvgLatency, "avg-cycles")
			}
		})
	}
}

// BenchmarkAblationMirrorVsChained contrasts the mirror allocator's 2x2
// modules (RoCo) against the chained quadrant allocation (path-sensitive)
// at high load, isolating the matching-quality difference Table 2
// formalizes.
func BenchmarkAblationMirrorVsChained(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ps := Run(Config{Router: PathSensitive, Algorithm: XY, Traffic: Uniform,
			InjectionRate: 0.30, WarmupPackets: 200, MeasurePackets: 4000, Seed: 9})
		rc := Run(Config{Router: RoCo, Algorithm: XY, Traffic: Uniform,
			InjectionRate: 0.30, WarmupPackets: 200, MeasurePackets: 4000, Seed: 9})
		b.ReportMetric(ps.AvgLatency/rc.AvgLatency, "latency-ratio")
	}
}

// BenchmarkAblationMirrorSA contrasts the Mirroring-Effect switch
// allocator against a plain separable output stage on the same RoCo
// datapath at high load — the matching-quality gain of the paper's
// Section 3.3 in isolation.
func BenchmarkAblationMirrorSA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mirror := Run(Config{Router: RoCo, Algorithm: XY, Traffic: Uniform,
			InjectionRate: 0.30, WarmupPackets: 200, MeasurePackets: 4000, Seed: 13})
		separable := Run(Config{Router: RoCo, Algorithm: XY, Traffic: Uniform,
			InjectionRate: 0.30, WarmupPackets: 200, MeasurePackets: 4000, Seed: 13,
			DisableMirrorSA: true})
		b.ReportMetric(separable.AvgLatency/mirror.AvgLatency, "latency-ratio")
	}
}

// BenchmarkAblationFaultRecovery measures the cost of each hardware-
// recycling scheme: latency with the recoverable fault divided by the
// fault-free latency.
func BenchmarkAblationFaultRecovery(b *testing.B) {
	comps := map[string]Component{"RC-double-routing": RC, "buffer-virtual-queuing": Buffer, "SA-resource-sharing": SA}
	for name, comp := range comps {
		comp := comp
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				base := Run(Config{Router: RoCo, Algorithm: XY, Traffic: Uniform,
					InjectionRate: 0.20, WarmupPackets: 200, MeasurePackets: 3000, Seed: 11})
				faulty := Run(Config{Router: RoCo, Algorithm: XY, Traffic: Uniform,
					InjectionRate: 0.20, WarmupPackets: 200, MeasurePackets: 3000, Seed: 11,
					Faults: []Fault{{Node: 27, Component: comp, Module: 0, VC: 0}}})
				if faulty.Completion != 1 {
					b.Fatalf("%s recovery incomplete: %v", name, faulty.Completion)
				}
				b.ReportMetric(faulty.AvgLatency/base.AvgLatency, "latency-ratio")
			}
		})
	}
}
